package gpusim

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/cache"
	"github.com/plutus-gpu/plutus/internal/dense"
	"github.com/plutus-gpu/plutus/internal/dram"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// GPU is one simulated device executing one workload.
//
// The simulation is sharded: all SMs and warps live on one shard, and
// each memory partition is its own shard with a private event engine.
// Requests and responses cross the SM↔partition interconnect as
// cycle-stamped mailbox messages, and the shards advance in lockstep
// windows no wider than the interconnect latency (conservative PDES).
// With Config.ParallelPartitions the shards execute on parallel
// goroutines; either way the result is bit-identical, because message
// delivery order is canonical and no state crosses shard boundaries.
type GPU struct {
	cfg     Config
	cluster *sim.Cluster
	smShard *sim.Shard
	eng     *sim.Engine // SM-side engine (smShard's); warps schedule here
	xbar    sim.Cycle   // effective interconnect latency (≥ 1, the lookahead)
	il      *geom.Interleaver
	wl      Workload
	parts   []*partition
	sms     []*smCtx
	warps   []*warpCtx

	// coalesceBuf is the SM shard's reusable sector-dedup scratch; see
	// coalesce for the aliasing contract.
	coalesceBuf []geom.Addr

	issued      uint64
	loads       uint64
	stores      uint64
	activeWarps int
	budgetDone  bool

	// Checkpoint state (see checkpoint.go). While draining, fetch parks
	// warps instead of issuing; parked records the park order, which is
	// part of the deterministic-replay contract. restoredParked seeds the
	// first window of a resumed run; nextCkpt is the next checkpoint
	// trigger cycle when cfg.CheckpointEvery > 0.
	draining       bool
	parked         []*warpCtx
	restoredParked []int
	nextCkpt       uint64

	// Fault-injection schedule (see tamper.go). tamperApplied is the
	// count of ops already applied; it is part of the snapshot so a
	// resumed run does not re-apply ops its snapshot already contains.
	tamperOps     []TamperOp
	tamperApplied int
	tamperLog     []TamperRecord

	// issueTap, when set, observes every instruction the moment it is
	// issued (after the workload hands it out, before any scheduling) —
	// the hook trace capture records the real issued stream through. Not
	// simulation state: a capturing caller re-registers it after resume.
	issueTap func(warp int, inst Inst)
}

// SetIssueTap registers fn to observe every issued instruction in issue
// order, or removes the tap when fn is nil. The tap sees exactly what
// execute sees — including streams shortened by instruction budgets or
// altered scheduling under tamper plans — so a capture of a run is the
// run. fn must not retain inst.Addrs past the call.
func (g *GPU) SetIssueTap(fn func(warp int, inst Inst)) { g.issueTap = fn }

// partition is one memory-side shard. All fields are owned by the
// partition's goroutine during a window; the SM side may only reach them
// through mailbox messages.
type partition struct {
	//simlint:ignore snapsym construction wiring: the section name carries the id, New rebuilds it
	id int
	//simlint:ignore snapsym construction wiring, rebuilt by New
	gpu *GPU
	//simlint:ignore snapsym construction wiring, rebuilt by New
	shard  *sim.Shard
	eng    *sim.Engine // partition-local engine (shard's)
	l2     *cache.Cache
	l2data dense.Sectors // by local sector index → plaintext
	sec    *secmem.Engine
	ch     *dram.Channel
	st     *stats.Stats
	l2Free sim.Cycle // L2 bank single-issue ladder
	// mshrWait queues requests blocked on a full L2 MSHR file; they are
	// released when a fill frees an entry (no polling).
	//simlint:ignore snapsym holds closures, empty by the quiescence invariant when snapshots are taken
	mshrWait sim.FuncQueue
}

// releaseMSHRWaiters wakes as many blocked requests as there are free
// MSHR entries (waking more would only re-park them).
func (p *partition) releaseMSHRWaiters() {
	n := p.l2.FreeMSHRs()
	if m := p.mshrWait.Len(); n > m {
		n = m
	}
	for ; n > 0; n-- {
		p.eng.Schedule(1, p.mshrWait.Pop())
	}
}

type smCtx struct {
	// slotFree is the next free issue slot, in units of 1/IssueWidth
	// cycle, so multi-issue SMs are modelled without fractional cycles.
	slotFree uint64
}

type warpCtx struct {
	id, sm      int
	active      bool
	outstanding int  // loads in flight
	blocked     bool // stalled on MaxPendingLoads
}

// loadCtx tracks one load instruction's outstanding sectors.
type loadCtx struct {
	remaining int
}

// New builds a GPU running workload wl under cfg.
func New(cfg Config, wl Workload) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	il, err := geom.NewInterleaver(cfg.Partitions)
	if err != nil {
		return nil, err
	}
	g := &GPU{cfg: cfg, il: il, wl: wl}
	// The interconnect latency is the PDES lookahead; a zero-latency
	// crossbar is modelled as one cycle so the window stays positive.
	g.xbar = cfg.XbarLatency
	if g.xbar < 1 {
		g.xbar = 1
	}
	// Shard 0 is the SM side; shards 1..Partitions are the partitions.
	g.cluster = sim.NewCluster(1+cfg.Partitions, g.xbar, cfg.ParallelPartitions)
	g.smShard = g.cluster.Shard(0)
	g.eng = g.smShard.Engine()

	for p := 0; p < cfg.Partitions; p++ {
		shard := g.cluster.Shard(1 + p)
		part := &partition{
			id:    p,
			gpu:   g,
			shard: shard,
			eng:   shard.Engine(),
			st:    &stats.Stats{},
		}
		part.l2 = cache.MustNew(cache.Config{
			Name:      fmt.Sprintf("l2.%d", p),
			SizeBytes: cfg.L2PerPartition,
			BlockSize: geom.BlockSize,
			Ways:      cfg.L2Ways,
			MSHRs:     cfg.L2MSHRs,
		})
		part.ch = dram.MustNew(cfg.DRAM, part.eng, &part.st.Traffic)
		sec := cfg.Sec
		part.sec, err = secmem.New(sec, part.eng, part.ch, part.st)
		if err != nil {
			return nil, err
		}
		p := p
		part.sec.InitData = func(local geom.Addr) []byte {
			buf := make([]byte, geom.SectorSize)
			global := il.GlobalAddr(p, local)
			for k := 0; k < geom.SectorSize/4; k++ {
				v := wl.MemValue(global + geom.Addr(k*4))
				buf[k*4] = byte(v)
				buf[k*4+1] = byte(v >> 8)
				buf[k*4+2] = byte(v >> 16)
				buf[k*4+3] = byte(v >> 24)
			}
			return buf
		}
		if src, ok := wl.(secmem.StreamCursorSource); ok {
			part.sec.StreamHint = func(local geom.Addr) (uint64, bool) {
				return src.StreamCursor(il.GlobalAddr(p, local))
			}
		}
		g.parts = append(g.parts, part)
	}

	g.sms = make([]*smCtx, cfg.SMs)
	for i := range g.sms {
		g.sms[i] = &smCtx{}
	}
	n := wl.Warps()
	g.warps = make([]*warpCtx, n)
	for w := 0; w < n; w++ {
		g.warps[w] = &warpCtx{id: w, sm: w % cfg.SMs, active: true}
	}
	g.activeWarps = n
	return g, nil
}

// fetch advances warp w to its next instruction.
func (g *GPU) fetch(w *warpCtx) {
	if !w.active {
		return
	}
	if g.draining {
		// Epoch drain: park instead of issuing. The workload cursor is
		// untouched, so the parked warp's next instruction is exactly the
		// one it will fetch after the checkpoint (or after resume).
		g.parked = append(g.parked, w)
		return
	}
	if g.budgetDone {
		g.retire(w)
		return
	}
	inst, ok := g.wl.Next(w.id)
	if !ok {
		g.retire(w)
		return
	}
	g.issued++
	if g.issueTap != nil {
		g.issueTap(w.id, inst)
	}
	if g.cfg.MaxInstructions > 0 && g.issued >= g.cfg.MaxInstructions {
		g.budgetDone = true
	}

	// Reserve an issue slot on the warp's SM.
	sm := g.sms[w.sm]
	now := g.eng.Now()
	slotNow := uint64(now) * uint64(g.cfg.IssueWidth)
	if sm.slotFree < slotNow {
		sm.slotFree = slotNow
	}
	t := sim.Cycle(sm.slotFree / uint64(g.cfg.IssueWidth))
	sm.slotFree++

	g.eng.Schedule(t-now, func() { g.execute(w, inst) })
}

// execute runs one instruction at its issue slot.
func (g *GPU) execute(w *warpCtx, inst Inst) {
	switch inst.Kind {
	case Compute:
		c := inst.Cycles
		if c < 1 {
			c = 1
		}
		g.eng.Schedule(sim.Cycle(c), func() { g.fetch(w) })
	case Load:
		g.loads++
		sectors := g.coalesce(inst.Addrs)
		if len(sectors) == 0 {
			g.eng.Schedule(1, func() { g.fetch(w) })
			return
		}
		w.outstanding++
		lc := &loadCtx{remaining: len(sectors)}
		for _, s := range sectors {
			g.routeLoad(w, lc, s)
		}
		// Warps tolerate several loads in flight (intra-warp MLP); they
		// stall only at the MLP limit.
		if w.outstanding < g.cfg.MaxPendingLoads {
			g.eng.Schedule(1, func() { g.fetch(w) })
		} else {
			w.blocked = true
		}
	case Store:
		g.stores++
		for _, s := range g.coalesce(inst.Addrs) {
			g.routeStore(w, s)
		}
		// Stores retire immediately (write-back hierarchy absorbs them).
		g.eng.Schedule(1, func() { g.fetch(w) })
	}
}

func (g *GPU) retire(w *warpCtx) {
	if w.active {
		w.active = false
		g.activeWarps--
	}
}

// coalesce reduces per-thread addresses to their unique sectors,
// preserving first-touch order. The result aliases a scratch buffer
// owned by the SM shard and is only valid until the next coalesce call;
// callers consume it synchronously (the interconnect closures capture
// sector values, never the slice). Warps are a few dozen threads wide,
// so a linear dedup scan beats a per-instruction map.
func (g *GPU) coalesce(addrs []geom.Addr) []geom.Addr {
	out := g.coalesceBuf[:0]
	for _, a := range addrs {
		s := geom.SectorAddr(a)
		dup := false
		for _, u := range out {
			if u == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	g.coalesceBuf = out
	return out
}

// routeLoad sends a load sector request across the interconnect: a
// mailbox message to the owning partition's shard, whose response is a
// mailbox message back to the SM shard. The closure that updates warp
// state is created here and executes on the SM shard only; the partition
// merely carries it.
func (g *GPU) routeLoad(w *warpCtx, lc *loadCtx, sector geom.Addr) {
	p := g.parts[g.il.Partition(sector)]
	local := g.il.LocalAddr(sector)
	g.smShard.Send(p.shard, g.xbar, func() {
		p.load(local, func() {
			// Response crosses back to the SM.
			p.shard.Send(g.smShard, g.xbar, func() {
				lc.remaining--
				if lc.remaining == 0 {
					w.outstanding--
					if w.blocked {
						w.blocked = false
						g.fetch(w)
					}
				}
			})
		})
	})
}

// routeStore sends a store across the interconnect, materializing the
// sector's store data from the workload on the SM side (Workload.Next
// and StoreValue are only ever called from the SM shard).
func (g *GPU) routeStore(w *warpCtx, sector geom.Addr) {
	p := g.parts[g.il.Partition(sector)]
	local := g.il.LocalAddr(sector)
	data := make([]byte, geom.SectorSize)
	for k := 0; k < geom.SectorSize/4; k++ {
		v := g.wl.StoreValue(w.id, sector+geom.Addr(k*4))
		data[k*4] = byte(v)
		data[k*4+1] = byte(v >> 8)
		data[k*4+2] = byte(v >> 16)
		data[k*4+3] = byte(v >> 24)
	}
	g.smShard.Send(p.shard, g.xbar, func() { p.store(local, data) })
}

// load services a load sector at the partition's L2.
func (p *partition) load(local geom.Addr, respond func()) {
	now := p.eng.Now()
	t := now
	if p.l2Free > t {
		t = p.l2Free
	}
	p.l2Free = t + 1
	p.eng.Schedule(t-now, func() { p.l2Load(local, respond) })
}

func (p *partition) l2Load(local geom.Addr, respond func()) {
	g := p.gpu
	mask := geom.MaskFor(local)
	out, need, m := p.l2.Lookup(local, mask, false, nil)
	switch out {
	case cache.Hit:
		p.eng.Schedule(g.cfg.L2HitLatency, respond)
	case cache.MissMerged:
		m.AddWaiter(respond)
	case cache.Miss:
		m.AddWaiter(respond)
		p.sec.Read(local, func(res secmem.ReadResult) {
			sa := geom.SectorAddr(local)
			// A store may have raced ahead of this fill; its dirty data
			// is newer than what memory returned.
			if p.l2.DirtyMask(sa)&geom.MaskFor(sa) == 0 {
				copy(p.l2data.Put(uint64(sa)/geom.SectorSize), res.Data)
			}
			evs, done, waiters := p.l2.FillSectors(m, need, false)
			p.handleL2Evictions(evs)
			if done {
				for _, fn := range waiters {
					fn()
				}
				p.releaseMSHRWaiters()
			}
		})
	case cache.MissNoMSHR:
		p.mshrWait.Push(func() { p.l2Load(local, respond) })
	}
}

// store services a store sector: write-allocate without fetch (coalesced
// GPU stores cover whole sectors).
func (p *partition) store(local geom.Addr, data []byte) {
	now := p.eng.Now()
	t := now
	if p.l2Free > t {
		t = p.l2Free
	}
	p.l2Free = t + 1
	p.eng.Schedule(t-now, func() {
		mask := geom.MaskFor(local)
		// Stores must not allocate MSHRs (nothing will ever fill them):
		// hit → mark dirty in place; miss → write-allocate without fetch
		// (coalesced GPU stores cover whole sectors).
		if p.l2.Probe(local)&mask == mask {
			p.l2.MarkDirty(local, mask)
			p.l2.Stats.Hits++
		} else {
			p.l2.Stats.Misses++
			evs := p.l2.Insert(local, mask, true)
			p.handleL2Evictions(evs)
		}
		copy(p.l2data.Put(uint64(geom.SectorAddr(local))/geom.SectorSize), data)
	})
}

// handleL2Evictions writes back dirty sectors of evicted L2 blocks.
func (p *partition) handleL2Evictions(evs []cache.Eviction) {
	for _, ev := range evs {
		for s := 0; s < geom.SectorsPerBlock; s++ {
			sa := ev.Addr + geom.Addr(s*geom.SectorSize)
			si := uint64(sa) / geom.SectorSize
			data, resident := p.l2data.Lookup(si)
			if ev.Dirty.Has(s) {
				if !resident {
					panic(fmt.Sprintf("gpusim: dirty L2 sector %#x has no data", sa))
				}
				// Writeback copies the sector before returning, so handing
				// it a slice aliasing the dense store is safe to delete.
				p.sec.Writeback(sa, data, nil)
			}
			p.l2data.Delete(si)
		}
	}
}

// flushL2 writes back all remaining dirty L2 sectors at end of run.
func (p *partition) flushL2() {
	p.l2.WalkDirty(func(block geom.Addr, dirty geom.SectorMask) {
		dirty.Sectors(func(s int) {
			sa := block + geom.Addr(s*geom.SectorSize)
			if data, ok := p.l2data.Lookup(uint64(sa) / geom.SectorSize); ok {
				p.sec.Writeback(sa, data, nil)
			}
		})
		p.l2.CleanSectors(block, dirty)
	})
}

// RunDebug is Run with a progress callback roughly every 2^20 events
// (diagnostic aid; not part of the stable API).
func (g *GPU) RunDebug(progress func(events, now, issued uint64, active int)) *stats.Stats {
	defer g.cluster.Close()
	for _, w := range g.warps {
		w := w
		g.eng.Schedule(0, func() { g.fetch(w) })
	}
	var n, lastReport uint64
	for {
		ran := g.cluster.RunWindow()
		if ran == 0 {
			break
		}
		n += ran
		if n-lastReport >= 1<<20 && progress != nil {
			lastReport = n
			progress(n, uint64(g.cluster.LastEventAt()), g.issued, g.activeWarps)
		}
	}
	return &stats.Stats{Cycles: uint64(g.cluster.LastEventAt()), Instructions: g.issued}
}

// DebugHungWarps reports warps still active with outstanding sectors
// after the event queue drained (diagnostic aid).
func (g *GPU) DebugHungWarps() (active, pendingSum int, mshrWait int, l2Inflight int, secPending int) {
	for _, w := range g.warps {
		if w.active {
			active++
			pendingSum += w.outstanding
		}
	}
	for _, p := range g.parts {
		mshrWait += p.mshrWait.Len()
		l2Inflight += p.l2.InflightMisses()
		secPending += p.sec.Pending()
	}
	return
}
