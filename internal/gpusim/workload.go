package gpusim

import "github.com/plutus-gpu/plutus/internal/geom"

// InstKind classifies a warp instruction.
type InstKind int

const (
	// Compute occupies the warp for Inst.Cycles without memory activity.
	Compute InstKind = iota
	// Load reads memory; the warp stalls until every coalesced sector
	// responds.
	Load
	// Store writes memory; it retires immediately after issue (GPU
	// stores are fire-and-forget into the L2 write-back hierarchy).
	Store
)

// Inst is one warp instruction as produced by a workload.
type Inst struct {
	Kind InstKind
	// Cycles is the duration of a Compute instruction (min 1).
	Cycles int
	// Addrs are the per-thread byte addresses of a Load/Store; the
	// simulator coalesces them into 32 B sector requests.
	Addrs []geom.Addr
}

// Workload generates the instruction streams and data contents of one
// benchmark. Implementations live in the workload package; the interface
// is defined here so the simulator has no dependency on them.
//
// Concurrency contract: Next and StoreValue are only ever called from
// the SM shard and may keep per-warp state, but MemValue must be safe
// for concurrent calls and depend only on its argument — with
// Config.ParallelPartitions every partition shard lazily materializes
// its memory image through MemValue from its own goroutine. All
// implementations in this repo derive MemValue from a pure hash.
type Workload interface {
	// Name identifies the benchmark in reports.
	Name() string
	// Warps is the total warp count (distributed round-robin over SMs).
	Warps() int
	// Next produces warp w's next instruction; ok=false retires the warp.
	Next(w int) (inst Inst, ok bool)
	// MemValue gives the initial 32-bit plaintext at global address addr
	// (addr is 4-byte aligned). This defines the device memory image and
	// hence the value-locality profile the paper's Fig. 9 studies.
	// It must be pure (see the interface comment).
	MemValue(addr geom.Addr) uint32
	// StoreValue gives the value warp w stores at addr (4-byte aligned).
	StoreValue(w int, addr geom.Addr) uint32
}
