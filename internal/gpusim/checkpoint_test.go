package gpusim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// scriptWorkload checkpoint support: pos is its whole mutable state.
func (s *scriptWorkload) Cursor() []uint64 {
	out := make([]uint64, len(s.pos))
	for i, p := range s.pos {
		out[i] = uint64(p)
	}
	return out
}

func (s *scriptWorkload) RestoreCursor(cur []uint64) error {
	if len(cur) != len(s.pos) {
		return fmt.Errorf("cursor has %d warps, workload has %d", len(cur), len(s.pos))
	}
	for i, c := range cur {
		s.pos[i] = int(c)
	}
	return nil
}

// ckptScript mixes cold loads, reuse, stores, and compute across both
// partitions — enough work for several checkpoint epochs, touching every
// serialized structure (L2, DRAM, counters, BMT, MAC state, value cache).
func ckptScript() []Inst {
	var sc []Inst
	for k := 0; k < 60; k++ {
		base := geom.Addr(k * 8192)
		sc = append(sc,
			Inst{Kind: Load, Addrs: []geom.Addr{base, base + 0x1000}},
			Inst{Kind: Compute, Cycles: 3},
			Inst{Kind: Store, Addrs: []geom.Addr{base}},
			Inst{Kind: Load, Addrs: []geom.Addr{base + 0x2000}},
		)
	}
	return sc
}

type snap struct {
	cycle uint64
	data  []byte
}

// runCheckpointed runs the script workload under cfg, collecting every
// snapshot, and returns the final statistics and snapshots.
func runCheckpointed(t *testing.T, cfg Config) (*stats.Stats, []snap) {
	t.Helper()
	g, err := New(cfg, newScript(8, ckptScript()))
	if err != nil {
		t.Fatal(err)
	}
	var snaps []snap
	st, err := g.RunWithCheckpoints(func(cycle uint64, data []byte) error {
		snaps = append(snaps, snap{cycle, append([]byte(nil), data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, snaps
}

// resumeAndFinish restores snapshot s under cfg with a fresh workload and
// runs to completion, collecting the snapshots taken after the resume.
func resumeAndFinish(t *testing.T, cfg Config, s snap) (*stats.Stats, []snap) {
	t.Helper()
	g, err := ResumeSnapshot(cfg, newScript(8, ckptScript()), s.data)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []snap
	st, err := g.RunWithCheckpoints(func(cycle uint64, data []byte) error {
		snaps = append(snaps, snap{cycle, append([]byte(nil), data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, snaps
}

// TestResumeDeterminism is the subsystem's core property: for every
// checkpoint N of a run, run(0→end) and run(0→N); restore; run(N→end)
// produce identical statistics — and the resumed run's own snapshots are
// byte-identical to the reference run's later snapshots, so the property
// holds transitively across any chain of kills and resumes. Swept over a
// mid-epoch cadence (odd number, lands inside DRAM bursts) and a
// power-of-two cadence (aligns with partition epoch boundaries).
func TestResumeDeterminism(t *testing.T) {
	for _, every := range []uint64{777, 1024} {
		every := every
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			cfg := testCfg(secmem.Plutus(1 << 20))
			cfg.CheckpointEvery = every
			ref, snaps := runCheckpointed(t, cfg)
			if len(snaps) < 2 {
				t.Fatalf("only %d checkpoints at cadence %d (cycles=%d); workload too short for the sweep",
					len(snaps), every, ref.Cycles)
			}
			for i, s := range snaps {
				st, rest := resumeAndFinish(t, cfg, s)
				if !reflect.DeepEqual(ref, st) {
					t.Fatalf("resume from checkpoint %d (cycle %d): stats diverge\nref:     %+v\nresumed: %+v",
						i, s.cycle, ref, st)
				}
				if len(rest) != len(snaps)-i-1 {
					t.Fatalf("resume from checkpoint %d: %d later snapshots, want %d",
						i, len(rest), len(snaps)-i-1)
				}
				for j, r := range rest {
					want := snaps[i+1+j]
					if r.cycle != want.cycle || !bytes.Equal(r.data, want.data) {
						t.Fatalf("resume from checkpoint %d: snapshot %d differs (cycle %d vs %d)",
							i, j, r.cycle, want.cycle)
					}
				}
			}
		})
	}
}

// TestResumeCrossMode checks that snapshots are portable between
// sequential and parallel execution: both modes produce byte-identical
// snapshot streams, and a snapshot taken sequentially resumes under
// ParallelPartitions (and vice versa) to the same final statistics.
func TestResumeCrossMode(t *testing.T) {
	seqCfg := testCfg(secmem.Plutus(1 << 20))
	seqCfg.CheckpointEvery = 1200
	parCfg := seqCfg
	parCfg.ParallelPartitions = true

	seqSt, seqSnaps := runCheckpointed(t, seqCfg)
	parSt, parSnaps := runCheckpointed(t, parCfg)
	if !reflect.DeepEqual(seqSt, parSt) {
		t.Fatalf("modes diverge before any resume:\nseq: %+v\npar: %+v", seqSt, parSt)
	}
	if len(seqSnaps) != len(parSnaps) {
		t.Fatalf("%d sequential snapshots vs %d parallel", len(seqSnaps), len(parSnaps))
	}
	for i := range seqSnaps {
		if !bytes.Equal(seqSnaps[i].data, parSnaps[i].data) {
			t.Fatalf("snapshot %d differs between modes", i)
		}
	}

	mid := seqSnaps[len(seqSnaps)/2]
	if st, _ := resumeAndFinish(t, parCfg, mid); !reflect.DeepEqual(seqSt, st) {
		t.Fatalf("sequential snapshot resumed in parallel diverges:\nref: %+v\ngot: %+v", seqSt, st)
	}
	if st, _ := resumeAndFinish(t, seqCfg, parSnaps[len(parSnaps)/2]); !reflect.DeepEqual(seqSt, st) {
		t.Fatalf("parallel snapshot resumed sequentially diverges:\nref: %+v\ngot: %+v", seqSt, st)
	}
}

// TestCheckpointSinkStopsRun models preemption: the sink accepts the
// first snapshot then asks to stop; the run aborts with the sink's error
// and the captured snapshot resumes to the reference result.
func TestCheckpointSinkStopsRun(t *testing.T) {
	cfg := testCfg(secmem.Plutus(1 << 20))
	cfg.CheckpointEvery = 1200
	ref, _ := runCheckpointed(t, cfg)

	g, err := New(cfg, newScript(8, ckptScript()))
	if err != nil {
		t.Fatal(err)
	}
	var kept []byte
	_, err = g.RunWithCheckpoints(func(cycle uint64, data []byte) error {
		kept = append([]byte(nil), data...)
		return fmt.Errorf("worker preempted: %w", checkpoint.ErrPreempted)
	})
	if !errors.Is(err, checkpoint.ErrPreempted) {
		t.Fatalf("err = %v, want ErrPreempted", err)
	}
	st, _ := resumeAndFinish(t, cfg, snap{data: kept})
	if !reflect.DeepEqual(ref, st) {
		t.Fatalf("preempted-and-resumed run diverges:\nref: %+v\ngot: %+v", ref, st)
	}
}

// TestResumeRejectsMismatch: a snapshot only resumes under the exact
// configuration and workload it was taken from (execution mode aside).
func TestResumeRejectsMismatch(t *testing.T) {
	cfg := testCfg(secmem.Plutus(1 << 20))
	cfg.CheckpointEvery = 1200
	_, snaps := runCheckpointed(t, cfg)

	other := testCfg(secmem.PSSM(1 << 20))
	other.CheckpointEvery = 2048
	if _, err := ResumeSnapshot(other, newScript(8, ckptScript()), snaps[0].data); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("wrong scheme: err = %v, want ErrMismatch", err)
	}
	if _, err := ResumeSnapshot(cfg, newScript(4, ckptScript()), snaps[0].data); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("wrong warp count: err = %v, want ErrMismatch", err)
	}
}

// TestResumeRejectsDamage: the typed error taxonomy surfaces through
// ResumeSnapshot for truncated and corrupted snapshot bytes.
func TestResumeRejectsDamage(t *testing.T) {
	cfg := testCfg(secmem.Plutus(1 << 20))
	cfg.CheckpointEvery = 1200
	_, snaps := runCheckpointed(t, cfg)
	good := snaps[0].data
	wl := func() Workload { return newScript(8, ckptScript()) }

	if _, err := ResumeSnapshot(cfg, wl(), good[:len(good)/2]); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Fatalf("truncated: err = %v, want ErrTruncated", err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x40
	if _, err := ResumeSnapshot(cfg, wl(), flipped); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}
}
