package gpusim

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/checkpoint"
	"github.com/plutus-gpu/plutus/internal/dense"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// CheckpointableWorkload is the optional interface a Workload implements
// to participate in checkpoint/restore: the cursor is the complete
// mutable state of a deterministic instruction stream, so capturing it
// (plus the simulator state) captures the whole run.
type CheckpointableWorkload interface {
	Workload
	// Cursor returns a copy of the per-warp stream positions.
	Cursor() []uint64
	// RestoreCursor rewinds the stream to a previously captured cursor.
	RestoreCursor([]uint64) error
}

// CheckpointSink receives each snapshot taken during a checkpointed run,
// with the quiescent cycle it was taken at. A non-nil error aborts the
// run and is returned from RunWithCheckpoints; returning an error that
// wraps checkpoint.ErrPreempted is the sanctioned way to park a run for
// later resumption.
type CheckpointSink func(cycle uint64, snapshot []byte) error

// Snapshot section layout. The file is a checkpoint.File with:
//
//	"meta"      fingerprint string, snapshot cycle, next trigger, partition count
//	"gpu"       SM engine clock, issue counters, SM/warp contexts, parked order, applied-tamper index
//	"workload"  per-warp stream cursor
//	"part<i>"   partition engine clock, L2 ladder, L2 tags+data, secmem, DRAM, stats
//
// All sections are fixed field orders over quiescent state; two snapshots
// of identical simulator state are identical bytes.

// configFingerprint identifies the (configuration, workload) pair a
// snapshot belongs to. ParallelPartitions is excluded: sequential and
// parallel execution are bit-identical by construction, so a snapshot
// taken in one mode is valid to resume in the other.
func configFingerprint(cfg Config, wl Workload) string {
	fp := cfg
	fp.ParallelPartitions = false
	return fmt.Sprintf("%+v|wl=%s|warps=%d", fp, wl.Name(), wl.Warps())
}

// Run executes the workload to completion (or budget exhaustion) and
// returns the merged statistics. Per-shard statistics are merged in
// partition order at the end, so the result is deterministic regardless
// of execution mode. With Config.CheckpointEvery set, epoch drains still
// occur (keeping timing identical to a sink-driven run at the same
// cadence) but no snapshots are built.
func (g *GPU) Run() *stats.Stats {
	st, err := g.RunWithCheckpoints(nil)
	if err != nil {
		// With a nil sink the only error paths are invariant violations.
		panic(fmt.Sprintf("gpusim: %v", err))
	}
	return st
}

// RunWithCheckpoints is Run with a checkpoint sink. When
// Config.CheckpointEvery is nonzero, the run drains to quiescence each
// time the clock passes another multiple of that cadence, snapshots the
// complete simulator state, and hands it to sink (if non-nil). If sink
// returns an error the run stops immediately — still quiescent, with the
// just-written snapshot as its resumable state — and that error is
// returned.
func (g *GPU) RunWithCheckpoints(sink CheckpointSink) (*stats.Stats, error) {
	defer g.cluster.Close()
	if g.cfg.CheckpointEvery > 0 && g.nextCkpt == 0 {
		g.nextCkpt = g.cfg.CheckpointEvery
	}
	g.seedWork()

	// 2^34 events is far beyond any legitimate run; treat as livelock.
	var n uint64
	for {
		ran := g.cluster.RunWindow()
		if ran == 0 {
			break
		}
		n += ran
		if n >= 1<<34 {
			panic("gpusim: event livelock")
		}
		// Fault injections land here, between windows, so the mutation
		// point is deterministic and precedes any snapshot taken below.
		g.applyDueTamper(false)
		if g.cfg.CheckpointEvery > 0 && uint64(g.cluster.LastEventAt()) >= g.nextCkpt {
			if err := g.takeCheckpoint(sink); err != nil {
				return nil, err
			}
		}
	}

	// Apply any ops the budget never reached: the injected-op ground
	// truth must match the plan, not how far the workload got.
	g.applyDueTamper(true)

	// Final writeback accounting: flush dirty L2, then dirty metadata.
	// Each flush runs on its partition's own shard (and hence in
	// parallel when enabled), with a full drain between the phases.
	for _, p := range g.parts {
		p := p
		p.eng.Schedule(0, func() { p.flushL2() })
	}
	g.cluster.Run(1 << 30)
	for _, p := range g.parts {
		p := p
		p.eng.Schedule(0, func() { p.sec.FlushDirtyMetadata() })
	}
	g.cluster.Run(1 << 30)

	out := &stats.Stats{
		Benchmark:    g.wl.Name(),
		Scheme:       g.cfg.Sec.Scheme,
		Cycles:       uint64(g.cluster.LastEventAt()),
		Instructions: g.issued,
		MemInsts:     g.loads + g.stores,
		LoadInsts:    g.loads,
		StoreInsts:   g.stores,
	}
	for _, p := range g.parts {
		p.sec.FinishStats()
		p.st.L2 = p.l2.Stats
		out.Traffic.Add(&p.st.Traffic)
		out.Sec.Add(&p.st.Sec)
		out.L2.Add(&p.st.L2)
		out.CounterCache.Add(&p.st.CounterCache)
		out.MACCache.Add(&p.st.MACCache)
		out.BMTCache.Add(&p.st.BMTCache)
		out.CompactCache.Add(&p.st.CompactCache)
		out.CompactBMTC.Add(&p.st.CompactBMTC)
	}
	return out, nil
}

// seedWork schedules the first fetch of every runnable warp: all active
// warps in warp order on a fresh GPU, or the recorded park order on a
// resumed one. The two produce the same event sequence because a
// checkpointed run unparks in park order at the same clock.
func (g *GPU) seedWork() {
	if g.restoredParked != nil {
		for _, id := range g.restoredParked {
			w := g.warps[id]
			g.eng.Schedule(0, func() { g.fetch(w) })
		}
		g.restoredParked = nil
		return
	}
	for _, w := range g.warps {
		w := w
		g.eng.Schedule(0, func() { g.fetch(w) })
	}
}

// takeCheckpoint drains to quiescence, snapshots, invokes the sink, and
// resumes the parked warps. On sink error the warps stay parked and the
// error is propagated (the run is abandoned in its resumable state).
func (g *GPU) takeCheckpoint(sink CheckpointSink) error {
	g.draining = true
	for g.cluster.RunWindow() != 0 {
	}
	g.draining = false
	if err := g.quiescenceError(); err != nil {
		return err
	}
	// Advance the trigger before snapshotting so a resumed run continues
	// with the same next-checkpoint target as this one.
	last := uint64(g.cluster.LastEventAt())
	for g.nextCkpt <= last {
		g.nextCkpt += g.cfg.CheckpointEvery
	}
	if sink != nil {
		data, err := g.WriteSnapshot()
		if err != nil {
			return err
		}
		if err := sink(last, data); err != nil {
			return err
		}
	}
	for _, w := range g.parked {
		w := w
		g.eng.Schedule(0, func() { g.fetch(w) })
	}
	g.parked = g.parked[:0]
	return nil
}

// quiescenceError verifies the drained-epoch invariants: every active
// warp is parked with no loads in flight, and no partition holds
// in-flight misses, pending secure-memory requests, or MSHR waiters. Any
// violation is a simulator bug, reported as ErrNotQuiescent.
func (g *GPU) quiescenceError() error {
	parked := make(map[int]bool, len(g.parked))
	for _, w := range g.parked {
		parked[w.id] = true
	}
	for _, w := range g.warps {
		switch {
		case w.active && (w.outstanding != 0 || w.blocked):
			return fmt.Errorf("gpusim: warp %d drained with %d loads in flight (blocked=%v): %w",
				w.id, w.outstanding, w.blocked, checkpoint.ErrNotQuiescent)
		case w.active != parked[w.id]:
			return fmt.Errorf("gpusim: warp %d active=%v but parked=%v: %w",
				w.id, w.active, parked[w.id], checkpoint.ErrNotQuiescent)
		}
	}
	for _, p := range g.parts {
		switch {
		case p.l2.InflightMisses() != 0:
			return fmt.Errorf("gpusim: partition %d has %d in-flight L2 misses: %w",
				p.id, p.l2.InflightMisses(), checkpoint.ErrNotQuiescent)
		case p.sec.Pending() != 0:
			return fmt.Errorf("gpusim: partition %d has %d pending secmem requests: %w",
				p.id, p.sec.Pending(), checkpoint.ErrNotQuiescent)
		case p.mshrWait.Len() != 0:
			return fmt.Errorf("gpusim: partition %d has %d MSHR waiters: %w",
				p.id, p.mshrWait.Len(), checkpoint.ErrNotQuiescent)
		}
	}
	return nil
}

// WriteSnapshot serializes the complete simulator state as a
// self-describing snapshot file. The GPU must be quiescent (drained epoch
// boundary); RunWithCheckpoints arranges that before calling it.
func (g *GPU) WriteSnapshot() ([]byte, error) {
	cw, ok := g.wl.(CheckpointableWorkload)
	if !ok {
		return nil, fmt.Errorf("gpusim: workload %s does not support checkpointing", g.wl.Name())
	}
	f := &checkpoint.File{}

	me := checkpoint.NewEncoder()
	me.String(configFingerprint(g.cfg, g.wl))
	me.U64(uint64(g.cluster.LastEventAt()))
	me.U64(g.nextCkpt)
	me.U32(uint32(len(g.parts)))
	f.Add("meta", me.Data())

	ge := checkpoint.NewEncoder()
	now, lastEv := g.eng.Clock()
	ge.U64(uint64(now))
	ge.U64(uint64(lastEv))
	ge.U64(g.issued)
	ge.U64(g.loads)
	ge.U64(g.stores)
	ge.U64(uint64(g.activeWarps))
	ge.Bool(g.budgetDone)
	ge.U32(uint32(len(g.sms)))
	for _, sm := range g.sms {
		ge.U64(sm.slotFree)
	}
	ge.U32(uint32(len(g.warps)))
	for _, w := range g.warps {
		ge.Bool(w.active)
	}
	ge.U32(uint32(len(g.parked)))
	for _, w := range g.parked {
		ge.U32(uint32(w.id))
	}
	ge.U32(uint32(g.tamperApplied))
	f.Add("gpu", ge.Data())

	we := checkpoint.NewEncoder()
	cur := cw.Cursor()
	we.U32(uint32(len(cur)))
	for _, c := range cur {
		we.U64(c)
	}
	f.Add("workload", we.Data())

	for _, p := range g.parts {
		pe := checkpoint.NewEncoder()
		if err := p.Snapshot(pe); err != nil {
			return nil, err
		}
		f.Add(fmt.Sprintf("part%d", p.id), pe.Data())
	}
	return f.Encode(), nil
}

// Snapshot encodes one partition's complete mutable state: engine
// clock, L2 issue ladder, L2 tags and data, secure-memory engine, DRAM
// channel, and statistics shard.
func (p *partition) Snapshot(pe *checkpoint.Encoder) error {
	pnow, plast := p.eng.Clock()
	pe.U64(uint64(pnow))
	pe.U64(uint64(plast))
	pe.U64(uint64(p.l2Free))
	if err := p.l2.Snapshot(pe); err != nil {
		return err
	}
	pe.U64(uint64(p.l2data.Count()))
	p.l2data.ForEach(func(si uint64, rec []byte) {
		pe.U64(si * geom.SectorSize)
		pe.Bytes(rec)
	})
	if err := p.sec.Snapshot(pe); err != nil {
		return err
	}
	if err := p.ch.Snapshot(pe); err != nil {
		return err
	}
	p.st.Snapshot(pe)
	return nil
}

// Restore decodes state written by Snapshot, walking the same fields in
// the same order. The caller discards the GPU wholesale on error, so
// partially restored partition state never escapes.
func (p *partition) Restore(pd *checkpoint.Decoder) error {
	pnow, plast := sim.Cycle(pd.U64()), sim.Cycle(pd.U64())
	p.eng.RestoreClock(pnow, plast)
	p.l2Free = sim.Cycle(pd.U64())
	if err := p.l2.Restore(pd); err != nil {
		return err
	}
	nd := pd.U64()
	var l2data dense.Sectors
	for i := uint64(0); i < nd && pd.Err() == nil; i++ {
		a := geom.Addr(pd.U64())
		rec := pd.Bytes()
		if len(rec) != geom.SectorSize && pd.Err() == nil {
			return fmt.Errorf("gpusim: L2 sector %#x has %d bytes, want %d: %w",
				uint64(a), len(rec), geom.SectorSize, checkpoint.ErrCorrupt)
		}
		if pd.Err() == nil {
			copy(l2data.Put(uint64(a)/geom.SectorSize), rec)
		}
	}
	p.l2data = l2data
	if err := p.sec.Restore(pd); err != nil {
		return err
	}
	if err := p.ch.Restore(pd); err != nil {
		return err
	}
	if err := p.st.Restore(pd); err != nil {
		return err
	}
	return nil
}

// ResumeSnapshot builds a GPU from cfg and wl and restores the state in
// data, a snapshot previously produced by WriteSnapshot under the same
// configuration and workload (execution mode aside — see
// configFingerprint). The returned GPU continues from the snapshot's
// cycle when run; by the deterministic-replay guarantee its remaining
// execution, statistics, and later snapshots are byte-identical to the
// run the snapshot was taken from.
func ResumeSnapshot(cfg Config, wl Workload, data []byte) (*GPU, error) {
	cw, ok := wl.(CheckpointableWorkload)
	if !ok {
		return nil, fmt.Errorf("gpusim: workload %s does not support checkpointing", wl.Name())
	}
	f, err := checkpoint.Decode(data)
	if err != nil {
		return nil, err
	}
	g, err := New(cfg, wl)
	if err != nil {
		return nil, err
	}

	md, err := sectionDecoder(f, "meta")
	if err != nil {
		return nil, err
	}
	fp := md.String()
	cycle := md.U64()
	nextCkpt := md.U64()
	nParts := md.U32()
	if err := md.Finish(); err != nil {
		return nil, fmt.Errorf("gpusim: meta section: %w", err)
	}
	if want := configFingerprint(cfg, wl); fp != want {
		return nil, fmt.Errorf("gpusim: snapshot is for a different configuration or workload:\n  snapshot: %s\n  current:  %s\n%w",
			fp, want, checkpoint.ErrMismatch)
	}
	if int(nParts) != len(g.parts) {
		return nil, fmt.Errorf("gpusim: snapshot has %d partitions, config %d: %w",
			nParts, len(g.parts), checkpoint.ErrMismatch)
	}
	g.nextCkpt = nextCkpt
	_ = cycle // recorded for readers; the engine clocks carry the time

	gd, err := sectionDecoder(f, "gpu")
	if err != nil {
		return nil, err
	}
	smNow, smLast := sim.Cycle(gd.U64()), sim.Cycle(gd.U64())
	g.issued = gd.U64()
	g.loads = gd.U64()
	g.stores = gd.U64()
	g.activeWarps = int(gd.U64())
	g.budgetDone = gd.Bool()
	if n := gd.U32(); int(n) != len(g.sms) {
		if gd.Err() == nil {
			return nil, fmt.Errorf("gpusim: snapshot has %d SMs, config %d: %w", n, len(g.sms), checkpoint.ErrMismatch)
		}
	}
	for _, sm := range g.sms {
		sm.slotFree = gd.U64()
	}
	if n := gd.U32(); int(n) != len(g.warps) {
		if gd.Err() == nil {
			return nil, fmt.Errorf("gpusim: snapshot has %d warps, workload %d: %w", n, len(g.warps), checkpoint.ErrMismatch)
		}
	}
	for _, w := range g.warps {
		w.active = gd.Bool()
		w.outstanding = 0
		w.blocked = false
	}
	nParked := gd.U32()
	parked := make([]int, 0, nParked)
	for i := uint32(0); i < nParked && gd.Err() == nil; i++ {
		id := int(gd.U32())
		if id < 0 || id >= len(g.warps) {
			return nil, fmt.Errorf("gpusim: parked warp id %d out of range: %w", id, checkpoint.ErrCorrupt)
		}
		parked = append(parked, id)
	}
	g.tamperApplied = int(gd.U32())
	if err := gd.Finish(); err != nil {
		return nil, fmt.Errorf("gpusim: gpu section: %w", err)
	}
	g.restoredParked = parked
	g.eng.RestoreClock(smNow, smLast)

	wd, err := sectionDecoder(f, "workload")
	if err != nil {
		return nil, err
	}
	cur := make([]uint64, wd.U32())
	for i := range cur {
		cur[i] = wd.U64()
	}
	if err := wd.Finish(); err != nil {
		return nil, fmt.Errorf("gpusim: workload section: %w", err)
	}
	if err := cw.RestoreCursor(cur); err != nil {
		return nil, fmt.Errorf("gpusim: %v: %w", err, checkpoint.ErrMismatch)
	}

	for _, p := range g.parts {
		pd, err := sectionDecoder(f, fmt.Sprintf("part%d", p.id))
		if err != nil {
			return nil, err
		}
		if err := p.Restore(pd); err != nil {
			return nil, err
		}
		if err := pd.Finish(); err != nil {
			return nil, fmt.Errorf("gpusim: part%d section: %w", p.id, err)
		}
	}
	return g, nil
}

// sectionDecoder returns a decoder over the named section's payload.
func sectionDecoder(f *checkpoint.File, name string) (*checkpoint.Decoder, error) {
	payload, ok := f.Section(name)
	if !ok {
		return nil, fmt.Errorf("gpusim: snapshot missing section %q: %w", name, checkpoint.ErrCorrupt)
	}
	return checkpoint.NewDecoder(payload), nil
}
