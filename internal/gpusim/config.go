// Package gpusim is the cycle-driven GPU memory-system simulator the
// reproduction uses in place of GPGPU-Sim: streaming multiprocessors
// (SMs) whose warps issue coalesced loads and stores, a sectored L2 cache
// per memory partition, and per-partition secure-memory engines over a
// banked DRAM model.
//
// The SM model captures what matters for the paper's analysis — massive
// latency tolerance via warp multiplexing and an issue-bandwidth-bounded
// instruction stream — while the memory system below L2 is modelled in
// detail, because all of Plutus's effects are memory-system effects:
// security metadata competes with demand data for DRAM bandwidth, and
// IPC of memory-intensive kernels tracks that contention.
package gpusim

import (
	"fmt"

	"github.com/plutus-gpu/plutus/internal/dram"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/sim"
)

// Config describes the simulated GPU.
type Config struct {
	// SMs is the streaming-multiprocessor count (Volta: 80).
	SMs int
	// WarpsPerSM is the resident warp contexts per SM (Volta: 64).
	WarpsPerSM int
	// IssueWidth is warp instructions issued per SM per cycle.
	IssueWidth int
	// MaxPendingLoads is the number of load instructions one warp may
	// have in flight before stalling (intra-warp memory-level
	// parallelism; Volta sustains several).
	MaxPendingLoads int

	// Partitions is the memory partition count (power of two; Volta: 32).
	Partitions int
	// L2PerPartition is the L2 capacity per partition in bytes
	// (Volta: 2 banks × 96 KiB = 192 KiB).
	L2PerPartition int
	// L2Ways is L2 associativity.
	L2Ways int
	// L2MSHRs bounds outstanding L2 misses per partition.
	L2MSHRs int
	// L2HitLatency is the L2 access latency in core cycles.
	L2HitLatency sim.Cycle
	// XbarLatency is the SM↔partition interconnect latency each way.
	XbarLatency sim.Cycle

	// DRAM configures each partition's channel.
	DRAM dram.Config

	// Sec configures each partition's secure-memory engine (the scheme
	// under evaluation). ProtectedBytes is interpreted per partition.
	Sec secmem.Config

	// MaxInstructions stops fetching new warp instructions after this
	// many have issued (0 = unlimited).
	MaxInstructions uint64
	// MaxCycles hard-stops the simulation (0 = unlimited).
	MaxCycles uint64

	// CheckpointEvery, when nonzero, drains the simulation to a quiescent
	// epoch boundary every time the clock passes another multiple of this
	// many cycles and hands a snapshot to the run's checkpoint sink (see
	// GPU.RunWithCheckpoints). Draining perturbs event timing relative to
	// a run with CheckpointEvery == 0 — but identically for every run with
	// the same value, which is exactly what makes a killed-and-resumed run
	// byte-identical to an uninterrupted run at the same cadence. 0
	// disables checkpointing.
	CheckpointEvery uint64

	// ParallelPartitions executes each memory partition (and the SM
	// front end) on its own goroutine, advancing them in lockstep
	// windows of the interconnect latency (conservative PDES). Results
	// are bit-identical to the sequential default: cross-shard messages
	// are delivered in a canonical order that does not depend on
	// goroutine scheduling, and no simulation state crosses partition
	// boundaries. Speeds up single runs on multi-core hosts; sequential
	// mode remains the reference.
	ParallelPartitions bool
}

// DefaultVoltaConfig returns the paper's Table I configuration with the
// given security scheme. Simulations at full Volta scale are supported
// but slow; ScaledConfig is the usual choice for the benchmark harness.
func DefaultVoltaConfig(sec secmem.Config) Config {
	return Config{
		SMs:             80,
		WarpsPerSM:      64,
		IssueWidth:      1,
		MaxPendingLoads: 6,
		Partitions:      32,
		L2PerPartition:  192 * 1024,
		L2Ways:          24, // 64 sets of 128 B × 24 ways = 192 KiB

		L2MSHRs:      256,
		L2HitLatency: 34,
		XbarLatency:  20,
		DRAM:         dram.DefaultConfig(),
		Sec:          sec,
	}
}

// ScaledConfig returns a proportionally scaled-down GPU (fewer SMs and
// partitions, same per-partition ratios) that preserves the
// bandwidth-per-SM balance of Volta while simulating much faster. All
// relative results (scheme A vs. scheme B) are preserved because every
// scheme runs on the same substrate.
func ScaledConfig(sec secmem.Config) Config {
	c := DefaultVoltaConfig(sec)
	c.SMs = 20
	c.Partitions = 8
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SMs < 1 || c.WarpsPerSM < 1 || c.IssueWidth < 1:
		return fmt.Errorf("gpusim: SM config invalid: %+v", c)
	case c.Partitions < 1 || c.Partitions&(c.Partitions-1) != 0:
		return fmt.Errorf("gpusim: partition count %d not a power of two", c.Partitions)
	case c.L2PerPartition < 1024:
		return fmt.Errorf("gpusim: L2 %d B too small", c.L2PerPartition)
	}
	return nil
}
