package gpusim

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
)

// scriptWorkload is a minimal deterministic workload for unit tests:
// every warp executes the same script of instructions.
type scriptWorkload struct {
	name   string
	warps  int
	script []Inst
	pos    []int
	memVal func(geom.Addr) uint32
}

func newScript(warps int, script []Inst) *scriptWorkload {
	return &scriptWorkload{name: "script", warps: warps, script: script, pos: make([]int, warps)}
}

func (s *scriptWorkload) Name() string { return s.name }
func (s *scriptWorkload) Warps() int   { return s.warps }
func (s *scriptWorkload) Next(w int) (Inst, bool) {
	if s.pos[w] >= len(s.script) {
		return Inst{}, false
	}
	inst := s.script[s.pos[w]]
	s.pos[w]++
	return inst, true
}
func (s *scriptWorkload) MemValue(a geom.Addr) uint32 {
	if s.memVal != nil {
		return s.memVal(a)
	}
	return uint32(a)
}
func (s *scriptWorkload) StoreValue(w int, a geom.Addr) uint32 { return uint32(a) ^ 0xf00d }

func testCfg(sec secmem.Config) Config {
	c := ScaledConfig(sec)
	c.SMs = 2
	c.Partitions = 2
	c.Sec.ProtectedBytes = 1 << 20
	return c
}

func TestValidateConfig(t *testing.T) {
	c := testCfg(secmem.Baseline(1 << 20))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Partitions = 3
	if err := c.Validate(); err == nil {
		t.Error("non-power-of-two partitions validated")
	}
}

func TestComputeOnlyWorkloadIPC(t *testing.T) {
	// 4 warps on 2 SMs, 10 one-cycle compute instructions each: the SMs
	// issue 1/cycle, so 40 instructions over ≥ 20 cycles, IPC ≤ 2.
	wl := newScript(4, repeat(Inst{Kind: Compute, Cycles: 1}, 10))
	g, err := New(testCfg(secmem.Baseline(1<<20)), wl)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Run()
	if st.Instructions != 40 {
		t.Fatalf("instructions = %d, want 40", st.Instructions)
	}
	if st.Cycles < 20 {
		t.Fatalf("cycles = %d, want ≥ 20 (issue-bandwidth bound)", st.Cycles)
	}
	if st.Traffic.Total() != 0 {
		t.Fatalf("compute-only run moved %d bytes", st.Traffic.Total())
	}
}

func repeat(i Inst, n int) []Inst {
	out := make([]Inst, n)
	for k := range out {
		out[k] = i
	}
	return out
}

func TestLoadGeneratesDataTraffic(t *testing.T) {
	script := []Inst{{Kind: Load, Addrs: []geom.Addr{0x0, 0x1000, 0x2000, 0x3000}}}
	wl := newScript(1, script)
	g, err := New(testCfg(secmem.Baseline(1<<20)), wl)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Run()
	if st.LoadInsts != 1 {
		t.Fatalf("loads = %d", st.LoadInsts)
	}
	// 4 distinct sectors → 4 cold misses → 4 data reads.
	if st.Traffic.Reads[0] != 4 {
		t.Fatalf("data reads = %d, want 4", st.Traffic.Reads[0])
	}
}

func TestCoalescing(t *testing.T) {
	// 32 threads touching consecutive 4 B words = 4 sectors.
	var addrs []geom.Addr
	for i := 0; i < 32; i++ {
		addrs = append(addrs, geom.Addr(i*4))
	}
	var g GPU
	got := g.coalesce(addrs)
	if len(got) != 4 {
		t.Fatalf("coalesced to %d sectors, want 4", len(got))
	}
	// Scattered addresses stay scattered.
	scattered := []geom.Addr{0, 4096, 8192, 0}
	if got := g.coalesce(scattered); len(got) != 3 {
		t.Fatalf("scattered coalesced to %d, want 3", len(got))
	}
}

func TestL2CapturesReuse(t *testing.T) {
	// Two identical loads: second should hit in L2, one memory fetch.
	script := []Inst{
		{Kind: Load, Addrs: []geom.Addr{0x40}},
		{Kind: Load, Addrs: []geom.Addr{0x40}},
	}
	wl := newScript(1, script)
	g, _ := New(testCfg(secmem.Baseline(1<<20)), wl)
	st := g.Run()
	if st.Traffic.Reads[0] != 1 {
		t.Fatalf("data reads = %d, want 1 (L2 reuse)", st.Traffic.Reads[0])
	}
	// With intra-warp MLP the second load may issue while the first is
	// still in flight: either a hit or an MSHR merge proves reuse.
	if st.L2.Hits+st.L2.MSHRMerges == 0 {
		t.Fatal("no L2 reuse recorded")
	}
}

func TestStoresWriteBack(t *testing.T) {
	script := []Inst{{Kind: Store, Addrs: []geom.Addr{0x100}}}
	wl := newScript(1, script)
	g, _ := New(testCfg(secmem.Baseline(1<<20)), wl)
	st := g.Run()
	if st.StoreInsts != 1 {
		t.Fatalf("stores = %d", st.StoreInsts)
	}
	// The dirty sector must eventually be written to memory (flush).
	if st.Traffic.Writes[0] != 1 {
		t.Fatalf("data writes = %d, want 1", st.Traffic.Writes[0])
	}
}

func TestSecureSchemeAddsMetadataTraffic(t *testing.T) {
	script := []Inst{{Kind: Load, Addrs: []geom.Addr{0x0, 0x5000, 0x9000, 0xd000}}}
	base, _ := New(testCfg(secmem.Baseline(1<<20)), newScript(1, script))
	stBase := base.Run()
	sec, _ := New(testCfg(secmem.PSSM(1<<20)), newScript(1, script))
	stSec := sec.Run()
	if stSec.Traffic.MetadataBytes() == 0 {
		t.Fatal("secure run moved no metadata")
	}
	if stSec.Cycles <= stBase.Cycles {
		t.Fatalf("secure run (%d cyc) not slower than baseline (%d cyc)", stSec.Cycles, stBase.Cycles)
	}
}

func TestInstructionBudgetStops(t *testing.T) {
	wl := newScript(2, repeat(Inst{Kind: Compute, Cycles: 1}, 1000))
	cfg := testCfg(secmem.Baseline(1 << 20))
	cfg.MaxInstructions = 100
	g, _ := New(cfg, wl)
	st := g.Run()
	if st.Instructions < 100 || st.Instructions > 110 {
		t.Fatalf("instructions = %d, want ≈ 100", st.Instructions)
	}
}

func TestWarpsRetireCleanly(t *testing.T) {
	wl := newScript(8, []Inst{
		{Kind: Load, Addrs: []geom.Addr{0x200}},
		{Kind: Compute, Cycles: 3},
		{Kind: Store, Addrs: []geom.Addr{0x200}},
	})
	g, _ := New(testCfg(secmem.Plutus(1<<20)), wl)
	st := g.Run()
	if g.activeWarps != 0 {
		t.Fatalf("%d warps still active", g.activeWarps)
	}
	if st.Instructions != 24 {
		t.Fatalf("instructions = %d, want 24", st.Instructions)
	}
	if st.Sec.TamperDetected != 0 || st.Sec.ReplayDetected != 0 {
		t.Fatal("false security alarms in benign run")
	}
}

// Memory-bound workloads must be slower under security; the deficit
// shrinks with Plutus relative to PSSM on value-local data.
func TestSchemeOrderingOnValueLocalWorkload(t *testing.T) {
	mkScript := func() []Inst {
		var script []Inst
		for k := 0; k < 60; k++ {
			// Strided cold loads, metadata-cache hostile.
			script = append(script, Inst{Kind: Load, Addrs: []geom.Addr{geom.Addr(k * 8192)}})
		}
		return script
	}
	run := func(sec secmem.Config) uint64 {
		wl := newScript(16, mkScript())
		wl.memVal = func(geom.Addr) uint32 { return 7 } // maximal value locality
		cfg := testCfg(sec)
		g, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		return g.Run().Cycles
	}
	base := run(secmem.Baseline(1 << 20))
	pssm := run(secmem.PSSM(1 << 20))
	plutus := run(secmem.Plutus(1 << 20))
	if pssm <= base {
		t.Errorf("PSSM (%d) should be slower than no-security (%d)", pssm, base)
	}
	if plutus >= pssm {
		t.Errorf("Plutus (%d cyc) should beat PSSM (%d cyc) on value-local data", plutus, pssm)
	}
}
