package gpusim

// Fault-injection plumbing: the GPU carries an armed schedule of tamper
// operations (built by internal/tamper from a parsed plan) and applies
// each one at the first deterministic epoch boundary at or after its
// due cycle. Boundaries fall between conservative PDES windows, when no
// shard goroutine is running, so mutating a partition's DRAM-resident
// state from the main loop is race-free and lands at exactly the same
// point of the event order in sequential and parallel execution — which
// is what makes attacked runs replay byte-identically.

import (
	"fmt"
	"sort"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
)

// TamperOp is one armed fault injection.
type TamperOp struct {
	// Cycle is the earliest simulated cycle the op may apply at; it
	// lands at the first epoch boundary at or after Cycle (or at end of
	// run if the budget expires first, so the injected-op ground truth
	// never depends on how far the workload got).
	Cycle uint64
	// Kind names the attack class, for the log.
	Kind string
	// Global is the attacked global sector address.
	Global geom.Addr
	// Src is the splice-source global address; meaningful only when
	// HasSrc is set. It must map to the same partition as Global — the
	// attacker swaps bytes within one physical module.
	Src    geom.Addr
	HasSrc bool
	// Apply mutates the owning partition's DRAM-resident state through
	// the secmem attack primitives; both addresses arrive pre-translated
	// to partition-local. srcLocal is zero unless HasSrc.
	Apply func(sec *secmem.Engine, local, srcLocal geom.Addr)
}

// TamperRecord logs one applied injection, with its placement in the
// physical layout (partition, DRAM bank and row) for audit in tests.
type TamperRecord struct {
	Cycle     uint64 // the epoch-boundary cycle it was applied at
	Kind      string
	Partition int
	Local     geom.Addr
	Bank      int
	Row       uint64
}

// ArmTamper installs the fault-injection schedule. Ops must be sorted
// by Cycle (the tamper expander emits them sorted; ties keep plan
// order). Arming replaces any previous schedule but preserves an
// applied-prefix count restored from a snapshot, so re-arming the same
// plan on a resumed run skips the ops the snapshot already contains.
func (g *GPU) ArmTamper(ops []TamperOp) {
	if !sort.SliceIsSorted(ops, func(a, b int) bool { return ops[a].Cycle < ops[b].Cycle }) {
		panic("gpusim: tamper ops not sorted by cycle")
	}
	g.tamperOps = ops
	if g.tamperApplied > len(ops) {
		g.tamperApplied = len(ops)
	}
}

// TamperLog returns the applied injections in application order. On a
// resumed run the log covers only ops applied since resume (it is
// diagnostic state, deliberately outside the snapshot).
func (g *GPU) TamperLog() []TamperRecord { return g.tamperLog }

// applyDueTamper applies every unapplied op due at or before the
// current epoch boundary; force applies the whole remainder (end of
// run). Must only run between windows, when all shards are parked.
func (g *GPU) applyDueTamper(force bool) {
	now := uint64(g.cluster.LastEventAt())
	for g.tamperApplied < len(g.tamperOps) {
		op := g.tamperOps[g.tamperApplied]
		if !force && op.Cycle > now {
			return
		}
		pi := g.il.Partition(op.Global)
		p := g.parts[pi]
		local := g.il.LocalAddr(op.Global)
		var srcLocal geom.Addr
		if op.HasSrc {
			if sp := g.il.Partition(op.Src); sp != pi {
				panic(fmt.Sprintf("gpusim: tamper op %d splices across partitions (src %#x in %d, dst %#x in %d)",
					g.tamperApplied, uint64(op.Src), sp, uint64(op.Global), pi))
			}
			srcLocal = g.il.LocalAddr(op.Src)
		}
		if op.Apply != nil {
			op.Apply(p.sec, local, srcLocal)
		}
		bank, row := p.ch.BankRow(local)
		g.tamperLog = append(g.tamperLog, TamperRecord{
			Cycle: now, Kind: op.Kind, Partition: pi, Local: local, Bank: bank, Row: row,
		})
		g.tamperApplied++
	}
}
