package gpusim

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
)

// Two identical simulations must agree bit-for-bit on every statistic:
// the event kernel is deterministic and nothing depends on map iteration
// order or wall-clock time.
func TestSimulationDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		wl := newScript(8, []Inst{
			{Kind: Load, Addrs: []geom.Addr{0x100, 0x2100, 0x4100}},
			{Kind: Compute, Cycles: 5},
			{Kind: Store, Addrs: []geom.Addr{0x100}},
			{Kind: Load, Addrs: []geom.Addr{0x8000, 0x8100}},
		})
		cfg := testCfg(secmem.Plutus(1 << 22))
		g, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		st := g.Run()
		return st.Cycles, st.Traffic.Total(), st.Sec.ValueVerified
	}
	c1, t1, v1 := run()
	c2, t2, v2 := run()
	if c1 != c2 || t1 != t2 || v1 != v2 {
		t.Fatalf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", c1, t1, v1, c2, t2, v2)
	}
}

// Every supported scheme must complete a mixed workload with zero false
// alarms and all warps retired — the full cross-product sanity matrix.
func TestAllSchemesCompleteMixedWorkload(t *testing.T) {
	script := []Inst{
		{Kind: Load, Addrs: []geom.Addr{0x0, 0x1000, 0x2000}},
		{Kind: Store, Addrs: []geom.Addr{0x0}},
		{Kind: Compute, Cycles: 3},
		{Kind: Load, Addrs: []geom.Addr{0x0}},
		{Kind: Store, Addrs: []geom.Addr{0x3000}},
		{Kind: Load, Addrs: []geom.Addr{0x3000, 0x4000}},
	}
	schemes := []secmem.Config{
		secmem.Baseline(1 << 22),
		secmem.PSSM(1 << 22),
		secmem.PSSM4B(1 << 22),
		secmem.CommonCtr(1 << 22),
		secmem.PlutusValueOnly(1 << 22),
		secmem.PlutusFineGrain(1<<22, secmem.GranCtr32BMT128),
		secmem.PlutusFineGrain(1<<22, secmem.GranAll32),
		secmem.Plutus(1 << 22),
		secmem.PlutusNoTree(1 << 22),
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.Scheme, func(t *testing.T) {
			g, err := New(testCfg(sc), newScript(6, script))
			if err != nil {
				t.Fatal(err)
			}
			st := g.Run()
			if g.activeWarps != 0 {
				t.Fatalf("%d warps hung", g.activeWarps)
			}
			if st.Instructions != 36 {
				t.Fatalf("instructions = %d, want 36", st.Instructions)
			}
			if st.Sec.TamperDetected+st.Sec.ReplayDetected != 0 {
				t.Fatalf("false alarms: %+v", st.Sec)
			}
		})
	}
}

// Secure schemes must not change the data the program observes: run the
// same write/read script under nosec and Plutus and compare the DRAM
// images... observable here as identical per-warp completion of reads
// with correct flush traffic (data writes must match across schemes).
func TestDataWritesMatchAcrossSchemes(t *testing.T) {
	script := []Inst{
		{Kind: Store, Addrs: []geom.Addr{0x100}},
		{Kind: Store, Addrs: []geom.Addr{0x5100}},
		{Kind: Load, Addrs: []geom.Addr{0x100, 0x5100}},
	}
	counts := map[string]uint64{}
	for _, sc := range []secmem.Config{secmem.Baseline(1 << 22), secmem.Plutus(1 << 22)} {
		g, err := New(testCfg(sc), newScript(2, script))
		if err != nil {
			t.Fatal(err)
		}
		st := g.Run()
		counts[sc.Scheme] = st.Traffic.Writes[0] // data-class writes
	}
	if counts["nosec"] != counts["plutus"] {
		t.Fatalf("data write transactions differ: %v", counts)
	}
}
