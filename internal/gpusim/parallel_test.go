package gpusim

import (
	"testing"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

// runScriptMode runs one scripted workload under sc with the given
// execution mode and returns the full statistics record by value —
// stats.Stats contains only value fields, so runs compare with ==.
func runScriptMode(t *testing.T, sc secmem.Config, parallel bool) stats.Stats {
	t.Helper()
	wl := newScript(12, []Inst{
		{Kind: Load, Addrs: []geom.Addr{0x100, 0x2100, 0x4100, 0x6100}},
		{Kind: Compute, Cycles: 4},
		{Kind: Store, Addrs: []geom.Addr{0x100, 0x3100}},
		{Kind: Load, Addrs: []geom.Addr{0x8000, 0x8100, 0x9000}},
		{Kind: Store, Addrs: []geom.Addr{0x8000}},
		{Kind: Load, Addrs: []geom.Addr{0x100}},
	})
	cfg := testCfg(sc)
	cfg.Partitions = 4
	cfg.SMs = 4
	cfg.ParallelPartitions = parallel
	g, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	return *g.Run()
}

// Parallel partition execution must be bit-identical to sequential mode
// for every security scheme: the same cycles, traffic, cache and
// security counters, down to the last field.
func TestParallelBitIdenticalToSequential(t *testing.T) {
	schemes := []secmem.Config{
		secmem.Baseline(1 << 22),
		secmem.PSSM(1 << 22),
		secmem.CommonCtr(1 << 22),
		secmem.PlutusValueOnly(1 << 22),
		secmem.PlutusFineGrain(1<<22, secmem.GranAll32),
		secmem.Plutus(1 << 22),
		secmem.PlutusNoTree(1 << 22),
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.Scheme, func(t *testing.T) {
			seq := runScriptMode(t, sc, false)
			par := runScriptMode(t, sc, true)
			if seq != par {
				t.Fatalf("parallel run diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// A zero-latency crossbar still needs a positive lookahead window; the
// simulator models it as one cycle, and both modes must agree.
func TestParallelZeroXbarLatency(t *testing.T) {
	run := func(parallel bool) stats.Stats {
		wl := newScript(4, []Inst{
			{Kind: Load, Addrs: []geom.Addr{0x0, 0x1000}},
			{Kind: Store, Addrs: []geom.Addr{0x0}},
		})
		cfg := testCfg(secmem.Plutus(1 << 20))
		cfg.XbarLatency = 0
		cfg.ParallelPartitions = parallel
		g, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		return *g.Run()
	}
	if seq, par := run(false), run(true); seq != par {
		t.Fatalf("zero-xbar runs diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

// Sequential mode must itself be repeatable with parallelism enabled in
// the config — two parallel runs must agree with each other, not just
// with one sequential reference.
func TestParallelRepeatable(t *testing.T) {
	a := runScriptMode(t, secmem.Plutus(1<<22), true)
	b := runScriptMode(t, secmem.Plutus(1<<22), true)
	if a != b {
		t.Fatalf("two parallel runs diverged:\n1st: %+v\n2nd: %+v", a, b)
	}
}
