package siphash

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference test vectors from the SipHash paper's appendix: key
// 000102...0f, messages of increasing length 00, 01, 02, ...
var refVectors = []uint64{
	0x726fdb47dd0e0e31, 0x74f839c593dc67fd, 0x0d6c8009d9a94f5a, 0x85676696d7fb7e2d,
	0xcf2794e0277187b7, 0x18765564cd99a68d, 0xcbc9466e58fee3ce, 0xab0200f58b01d137,
	0x93f5f5799a932462, 0x9e0082df0ba9e4b0, 0x7a5dbbc594ddb9f3, 0xf4b32f46226bada7,
	0x751e8fbc860ee5fb, 0x14ea5627c0843d90, 0xf723ca908e7af2ee, 0xa129ca6149be45e5,
	0x3f2acc7f57c29bdb, 0x699ae9f52cbe4794, 0x4bc1b3f0968dd39c, 0xbb6dc91da77961bd,
	0xbed65cf21aa2ee98, 0xd0f2cbb02e3b67c7, 0x93536795e3a33e88, 0xa80c038ccd5ccec8,
	0xb8ad50c6f649af94, 0xbce192de8a85b8ea, 0x17d835b85bbb15f3, 0x2f2e6163076bcfad,
	0xde4daaaca71dc9a5, 0xa6a2506687956571, 0xad87a3535c49ef28, 0x32d892fad841c342,
	0x7127512f72f27cce, 0xa7f32346f95978e3, 0x12e0b01abb051238, 0x15e034d40fa197ae,
	0x314dffbe0815a3b4, 0x027990f029623981, 0xcadcd4e59ef40c4d, 0x9abfd8766a33735c,
	0x0e3ea96b5304a7d0, 0xad0c42d6fc585992, 0x187306c89bc215a9, 0xd4a60abcf3792b95,
	0xf935451de4f21df2, 0xa9538f0419755787, 0xdb9acddff56ca510, 0xd06c98cd5c0975eb,
	0xe612a3cb9ecba951, 0xc766e62cfcadaf96, 0xee64435a9752fe72, 0xa192d576b245165a,
	0x0a8787bf8ecb74b2, 0x81b3e73d20b49b6f, 0x7fa8220ba3b2ecea, 0x245731c13ca42499,
	0xb78dbfaf3a8d83bd, 0xea1ad565322a1a0b, 0x60e61c23a3795013, 0x6606d7e446282b93,
	0x6ca4ecb15c5f91e1, 0x9f626da15c9625f3, 0xe51b38608ef25f57, 0x958a324ceb064572,
}

func refKey() Key {
	var kb [16]byte
	for i := range kb {
		kb[i] = byte(i)
	}
	return NewKey(kb)
}

func TestReferenceVectors(t *testing.T) {
	k := refKey()
	msg := make([]byte, 0, len(refVectors))
	for i, want := range refVectors {
		if got := Sum64(k, msg); got != want {
			t.Fatalf("vector %d: Sum64 = %#016x, want %#016x", i, got, want)
		}
		msg = append(msg, byte(i))
	}
}

func TestKeySensitivity(t *testing.T) {
	msg := []byte("plutus secure memory")
	a := Sum64(Key{K0: 1, K1: 2}, msg)
	b := Sum64(Key{K0: 1, K1: 3}, msg)
	if a == b {
		t.Error("different keys produced identical tags")
	}
}

func TestSumTaggedBindsAddressAndCounter(t *testing.T) {
	k := refKey()
	data := make([]byte, 32)
	base := SumTagged(k, data, 0x1000, 7)
	if SumTagged(k, data, 0x1020, 7) == base {
		t.Error("tag did not change with address (splicing undetected)")
	}
	if SumTagged(k, data, 0x1000, 8) == base {
		t.Error("tag did not change with counter (replay undetected)")
	}
	d2 := make([]byte, 32)
	d2[5] = 1
	if SumTagged(k, d2, 0x1000, 7) == base {
		t.Error("tag did not change with data (tampering undetected)")
	}
}

// TestSumTaggedMatchesConcat pins the streaming SumTagged to its
// definition: Sum64 over the literal concatenation data||tweak. Lengths
// 0..40 cover every word-boundary phase of the data tail (0..7 bytes
// straddling into the tweak) on both sides of the 32 B sector size.
func TestSumTaggedMatchesConcat(t *testing.T) {
	k := refKey()
	for n := 0; n <= 40; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*131 + n*17)
		}
		addr := uint64(0x0123456789abcdef)
		counter := uint64(0xfedcba9876543210) + uint64(n)

		var tweak [16]byte
		binary.LittleEndian.PutUint64(tweak[0:8], addr)
		binary.LittleEndian.PutUint64(tweak[8:16], counter)
		ref := Sum64(k, append(append([]byte{}, data...), tweak[:]...))

		if got := SumTagged(k, data, addr, counter); got != ref {
			t.Errorf("len %d: SumTagged = %#016x, want Sum64(data||tweak) = %#016x", n, got, ref)
		}
	}
}

func TestSumTaggedAllocFree(t *testing.T) {
	k := refKey()
	data := make([]byte, 32)
	allocs := testing.AllocsPerRun(100, func() {
		SumTagged(k, data, 0x1000, 7)
	})
	if allocs != 0 {
		t.Errorf("SumTagged allocated %v times per call, want 0", allocs)
	}
}

func TestTruncate(t *testing.T) {
	tag := uint64(0x1122334455667788)
	cases := []struct {
		size int
		want uint64
	}{
		{0, 0}, {-1, 0},
		{1, 0x88}, {2, 0x7788}, {4, 0x55667788},
		{8, tag}, {9, tag},
	}
	for _, c := range cases {
		if got := Truncate(tag, c.size); got != c.want {
			t.Errorf("Truncate(%d) = %#x, want %#x", c.size, got, c.want)
		}
	}
}

// Property: a single flipped bit anywhere in a 32-byte message changes the
// tag (with overwhelming probability; a fixed generator makes this
// deterministic in practice).
func TestBitFlipChangesTag(t *testing.T) {
	k := refKey()
	f := func(seed uint64, bit uint16) bool {
		var msg [32]byte
		binary.LittleEndian.PutUint64(msg[:8], seed)
		binary.LittleEndian.PutUint64(msg[13:21], seed*0x9e3779b97f4a7c15)
		orig := Sum64(k, msg[:])
		b := int(bit) % 256
		msg[b/8] ^= 1 << (b % 8)
		return Sum64(k, msg[:]) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum64Sector(b *testing.B) {
	k := refKey()
	msg := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		Sum64(k, msg)
	}
}
