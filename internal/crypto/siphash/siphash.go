// Package siphash implements SipHash-2-4, a keyed 64-bit pseudorandom
// function (Aumasson & Bernstein, 2012). The reproduction uses it as the
// message-authentication-code engine: the paper's designs attach a
// truncated keyed MAC to every 32 B data sector (8 B in Plutus, 4 B in
// PSSM), and SipHash is the standard choice for fast short-input keyed
// MACs with no stdlib equivalent.
//
// The implementation follows the reference algorithm: a 128-bit key, two
// compression rounds per 8-byte word, four finalization rounds.
package siphash

import "encoding/binary"

// Key is a 128-bit SipHash key.
type Key struct {
	K0, K1 uint64
}

// NewKey builds a Key from 16 bytes.
func NewKey(b [16]byte) Key {
	return Key{
		K0: binary.LittleEndian.Uint64(b[0:8]),
		K1: binary.LittleEndian.Uint64(b[8:16]),
	}
}

func rotl(x uint64, b uint) uint64 { return x<<b | x>>(64-b) }

func round(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = rotl(v1, 13)
	v1 ^= v0
	v0 = rotl(v0, 32)
	v2 += v3
	v3 = rotl(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = rotl(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = rotl(v1, 17)
	v1 ^= v2
	v2 = rotl(v2, 32)
	return v0, v1, v2, v3
}

// initState derives the initial SipHash state from the key.
func initState(k Key) (uint64, uint64, uint64, uint64) {
	return k.K0 ^ 0x736f6d6570736575,
		k.K1 ^ 0x646f72616e646f6d,
		k.K0 ^ 0x6c7967656e657261,
		k.K1 ^ 0x7465646279746573
}

// compress absorbs one 8-byte message word (two SipRounds).
func compress(v0, v1, v2, v3, m uint64) (uint64, uint64, uint64, uint64) {
	v3 ^= m
	v0, v1, v2, v3 = round(v0, v1, v2, v3)
	v0, v1, v2, v3 = round(v0, v1, v2, v3)
	v0 ^= m
	return v0, v1, v2, v3
}

// finalize absorbs the length-tagged last word and runs the four
// finalization rounds. last must hold the trailing 0..7 message bytes in
// its low bits with the total message length (mod 256) in the top byte.
func finalize(v0, v1, v2, v3, last uint64) uint64 {
	v0, v1, v2, v3 = compress(v0, v1, v2, v3, last)
	v2 ^= 0xff
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = round(v0, v1, v2, v3)
	}
	return v0 ^ v1 ^ v2 ^ v3
}

// Sum64 computes the SipHash-2-4 tag of msg under key k.
//
//simlint:hotpath
func Sum64(k Key, msg []byte) uint64 {
	v0, v1, v2, v3 := initState(k)

	n := len(msg)
	for ; len(msg) >= 8; msg = msg[8:] {
		v0, v1, v2, v3 = compress(v0, v1, v2, v3, binary.LittleEndian.Uint64(msg))
	}

	last := uint64(n) << 56
	for i, b := range msg {
		last |= uint64(b) << (8 * uint(i))
	}
	return finalize(v0, v1, v2, v3, last)
}

// SumTagged computes a stateful MAC in the Bonsai-Merkle-Tree style: the
// tag binds the data to its address and encryption counter, so a block
// spliced from another address or an old (replayed) counter value
// produces a different tag. The result is bit-identical to
// Sum64(k, data||tweak) where tweak is the 16-byte little-endian
// (addr, counter) pair, but the tweak is streamed into the hash state
// instead of materialized in an appended buffer, so the call does not
// allocate — it runs once per sector on the MAC verify path.
//
//simlint:hotpath
func SumTagged(k Key, data []byte, addr uint64, counter uint64) uint64 {
	v0, v1, v2, v3 := initState(k)

	n := len(data) + 16
	msg := data
	for ; len(msg) >= 8; msg = msg[8:] {
		v0, v1, v2, v3 = compress(v0, v1, v2, v3, binary.LittleEndian.Uint64(msg))
	}

	// Splice the 0..7 trailing data bytes and the 16-byte tweak into one
	// stack buffer so the 8-byte word boundaries line up with the logical
	// concatenation data||tweak.
	var tail [24]byte
	r := copy(tail[:], msg)
	binary.LittleEndian.PutUint64(tail[r:r+8], addr)
	binary.LittleEndian.PutUint64(tail[r+8:r+16], counter)
	rem := tail[:r+16]
	for ; len(rem) >= 8; rem = rem[8:] {
		v0, v1, v2, v3 = compress(v0, v1, v2, v3, binary.LittleEndian.Uint64(rem))
	}

	last := uint64(n) << 56
	for i, b := range rem {
		last |= uint64(b) << (8 * uint(i))
	}
	return finalize(v0, v1, v2, v3, last)
}

// Truncate reduces a 64-bit tag to size bytes (1..8), matching the
// truncated MACs the paper's schemes store (4 B in PSSM, 8 B in Plutus).
//
//simlint:hotpath
func Truncate(tag uint64, size int) uint64 {
	if size <= 0 {
		return 0
	}
	if size >= 8 {
		return tag
	}
	return tag & (1<<(8*uint(size)) - 1)
}
