package gcipher

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey() [32]byte {
	var k [32]byte
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

func engines(t *testing.T) (cme, xts *Engine) {
	t.Helper()
	var err error
	cme, err = NewEngine(ModeCME, testKey())
	if err != nil {
		t.Fatal(err)
	}
	xts, err = NewEngine(ModeXTS, testKey())
	if err != nil {
		t.Fatal(err)
	}
	return cme, xts
}

func TestNewEngineRejectsBadMode(t *testing.T) {
	if _, err := NewEngine(Mode(9), testKey()); err == nil {
		t.Error("NewEngine(9) succeeded, want error")
	}
}

func TestModeString(t *testing.T) {
	if ModeCME.String() != "cme" || ModeXTS.String() != "xts" {
		t.Errorf("mode names: %v %v", ModeCME, ModeXTS)
	}
}

func TestRoundTrip(t *testing.T) {
	cme, xts := engines(t)
	pt := []byte("0123456789abcdefFEDCBA9876543210") // one 32 B sector
	for _, e := range []*Engine{cme, xts} {
		ct, err := e.Encrypt(pt, 0x4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ct, pt) {
			t.Errorf("%v: ciphertext equals plaintext", e.Mode())
		}
		back, err := e.Decrypt(ct, 0x4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pt) {
			t.Errorf("%v: round trip failed: %x", e.Mode(), back)
		}
	}
}

func TestRejectsShortInput(t *testing.T) {
	_, xts := engines(t)
	if _, err := xts.Encrypt(make([]byte, 8), 0, 0); err == nil {
		t.Error("Encrypt accepted 8-byte input")
	}
}

func TestTweakUniqueness(t *testing.T) {
	_, xts := engines(t)
	pt := make([]byte, 32)
	c1, _ := xts.Encrypt(pt, 0x1000, 1)
	c2, _ := xts.Encrypt(pt, 0x1020, 1) // different address
	c3, _ := xts.Encrypt(pt, 0x1000, 2) // different counter
	if bytes.Equal(c1, c2) {
		t.Error("same ciphertext for different addresses (spatial dictionary attack)")
	}
	if bytes.Equal(c1, c3) {
		t.Error("same ciphertext for different counters (temporal dictionary attack)")
	}
}

// CME is malleable: flipping ciphertext bit i flips exactly plaintext bit i.
func TestCMEMalleability(t *testing.T) {
	cme, _ := engines(t)
	pt := []byte("malleability-test-32-byte-vector")
	ct, _ := cme.Encrypt(pt, 0x2000, 3)
	ct[5] ^= 0x10
	back, _ := cme.Decrypt(ct, 0x2000, 3)
	diff := 0
	for i := range pt {
		if back[i] != pt[i] {
			diff++
			if i != 5 || back[i]^pt[i] != 0x10 {
				t.Errorf("CME flip leaked to byte %d (delta %#x)", i, back[i]^pt[i])
			}
		}
	}
	if diff != 1 {
		t.Errorf("CME flip changed %d bytes, want exactly 1", diff)
	}
}

// XTS resists malleability: flipping one ciphertext bit re-randomizes the
// whole 16 B cipher block (and only that block).
func TestXTSMalleabilityResistance(t *testing.T) {
	_, xts := engines(t)
	pt := []byte("malleability-test-32-byte-vector")
	ct, _ := xts.Encrypt(pt, 0x2000, 3)
	ct[5] ^= 0x10 // inside the first 16 B cipher block
	back, _ := xts.Decrypt(ct, 0x2000, 3)

	diffFirst := 0
	for i := 0; i < 16; i++ {
		if back[i] != pt[i] {
			diffFirst++
		}
	}
	if diffFirst < 8 {
		t.Errorf("XTS flip changed only %d bytes of the tampered block; expected diffusion", diffFirst)
	}
	if !bytes.Equal(back[16:], pt[16:]) {
		t.Error("XTS flip leaked beyond the tampered cipher block")
	}
}

func TestCiphertextStealingRoundTrip(t *testing.T) {
	_, xts := engines(t)
	for _, n := range []int{17, 23, 31, 33, 47, 100} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i * 13)
		}
		ct, err := xts.Encrypt(pt, 0x8000, 9)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if len(ct) != n {
			t.Fatalf("len %d: ciphertext length %d", n, len(ct))
		}
		back, err := xts.Decrypt(ct, 0x8000, 9)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("len %d: stealing round trip failed", n)
		}
	}
}

func TestMulAlphaMatchesGF(t *testing.T) {
	// α·1 = x, i.e. shifting 0x01 left by one bit.
	var tw [16]byte
	tw[0] = 1
	mulAlpha(&tw)
	if tw[0] != 2 {
		t.Errorf("mulAlpha(1) low byte = %#x, want 2", tw[0])
	}
	// High-bit overflow applies the reduction polynomial 0x87.
	var hi [16]byte
	hi[15] = 0x80
	mulAlpha(&hi)
	if hi[0] != 0x87 || hi[15] != 0 {
		t.Errorf("mulAlpha(x^127) = %x, want reduction by 0x87", hi)
	}
}

func TestRoundTripProperty(t *testing.T) {
	_, xts := engines(t)
	cme, _ := engines(t)
	f := func(seed [32]byte, addr uint32, ctr uint16) bool {
		for _, e := range []*Engine{cme, xts} {
			ct, err := e.Encrypt(seed[:], uint64(addr), uint64(ctr))
			if err != nil {
				return false
			}
			back, err := e.Decrypt(ct, uint64(addr), uint64(ctr))
			if err != nil || !bytes.Equal(back, seed[:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkXTSEncryptSector(b *testing.B) {
	e := MustEngine(ModeXTS, testKey())
	pt := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		if _, err := e.Encrypt(pt, uint64(i)*32, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCMEEncryptSector(b *testing.B) {
	e := MustEngine(ModeCME, testKey())
	pt := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		if _, err := e.Encrypt(pt, uint64(i)*32, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
