// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// each sweeps one knob of a Plutus mechanism and reports the headline
// quantity as a metric, so `go test -bench Ablation` quantifies how much
// each parameter of the paper's design actually matters.
package plutus_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/valcache"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// streamReuse measures bfs's value-verified fraction under one value
// cache configuration (simulation-free: streams generated values).
func streamReuse(tb testing.TB, cfg valcache.Config) float64 {
	wl, err := workload.Get("bfs")
	if err != nil {
		tb.Fatal(err)
	}
	vc, err := valcache.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	buf := make([]byte, geom.SectorSize)
	var total, hits, issued int
	for w := 0; w < wl.Warps() && issued < 3000; w++ {
		for issued < 3000 {
			inst, ok := wl.Next(w)
			if !ok {
				break
			}
			issued++
			if inst.Kind == gpusim.Compute {
				continue
			}
			for _, a := range inst.Addrs {
				s := geom.SectorAddr(a)
				for k := 0; k < 8; k++ {
					binary.LittleEndian.PutUint32(buf[k*4:], wl.MemValue(s+geom.Addr(k*4)))
				}
				total++
				if vc.VerifySector(buf).Verified {
					hits++
				}
				vc.ObserveSector(buf)
			}
		}
	}
	return float64(hits) / float64(total)
}

// BenchmarkAblation_MatchThreshold sweeps the per-block hit threshold x
// (paper: 3 of 4) against both reuse rate and Eq. 1 security margin.
func BenchmarkAblation_MatchThreshold(b *testing.B) {
	p := valcache.HitProbability(256, 4)
	for _, x := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			cfg := valcache.DefaultConfig()
			cfg.MatchThreshold = x
			for i := 0; i < b.N; i++ {
				b.ReportMetric(streamReuse(b, cfg), "reuseRate")
				b.ReportMetric(valcache.ForgeryProbability(4, x, p), "forgeryProb")
			}
		})
	}
}

// BenchmarkAblation_MaskBits sweeps the low-bit mask (paper: 4 bits).
func BenchmarkAblation_MaskBits(b *testing.B) {
	for _, m := range []int{0, 4, 8} {
		b.Run(fmt.Sprintf("mask=%d", m), func(b *testing.B) {
			cfg := valcache.DefaultConfig()
			cfg.MaskBits = m
			for i := 0; i < b.N; i++ {
				b.ReportMetric(streamReuse(b, cfg), "reuseRate")
				b.ReportMetric(valcache.ForgeryProbability(4, cfg.MatchThreshold,
					valcache.HitProbability(cfg.Entries, m)), "forgeryProb")
			}
		})
	}
}

// BenchmarkAblation_PinnedFraction sweeps the pinned share of the value
// cache (paper: 25%). More pinning means more write guarantees but fewer
// transient entries for read verification.
func BenchmarkAblation_PinnedFraction(b *testing.B) {
	for _, f := range []float64{0, 0.25, 0.5} {
		b.Run(fmt.Sprintf("pinned=%.0f%%", 100*f), func(b *testing.B) {
			cfg := valcache.DefaultConfig()
			cfg.PinnedFrac = f
			for i := 0; i < b.N; i++ {
				b.ReportMetric(streamReuse(b, cfg), "reuseRate")
			}
		})
	}
}

// BenchmarkAblation_CompactWidth compares the three compact-counter
// designs end to end (paper Fig. 17's knob, write-heavy benchmark).
func BenchmarkAblation_CompactWidth(b *testing.B) {
	kinds := []counters.CompactKind{counters.Compact2Bit, counters.Compact3Bit, counters.Compact3BitAdaptive}
	for _, k := range kinds {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := geoSpeedup(b, secmem.PSSM(protected), secmem.PlutusCompact(protected, k))
				b.ReportMetric(sp.Mean, "speedup")
			}
		})
	}
}

// BenchmarkAblation_MACSize compares PSSM's original 4 B truncated MAC
// against the 8 B MAC the paper's baseline adopts: the bandwidth cost of
// doubling the security level.
func BenchmarkAblation_MACSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.PSSM4B(protected), secmem.PSSM(protected))
		b.ReportMetric(sp.Mean, "ipc8Bvs4B")
	}
}

// BenchmarkAblation_MetadataGranularity covers the intermediate design
// (32 B counters under 128 B tree nodes) that Fig. 16 places between the
// two extremes.
func BenchmarkAblation_MetadataGranularity(b *testing.B) {
	designs := []secmem.Granularity{secmem.GranAll128, secmem.GranCtr32BMT128, secmem.GranAll32}
	for _, g := range designs {
		b.Run(g.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := geoSpeedup(b, secmem.Baseline(protected), secmem.PlutusFineGrain(protected, g))
				b.ReportMetric(sp.Mean, "normIPC")
			}
		})
	}
}

// BenchmarkAblation_AdaptiveThreshold sweeps the disable threshold of the
// adaptive compact design (paper: 8 of 64 saturated counters).
func BenchmarkAblation_AdaptiveThreshold(b *testing.B) {
	for _, th := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("th=%d", th), func(b *testing.B) {
			sc := secmem.PlutusCompact(protected, counters.Compact3BitAdaptive)
			sc.Scheme = fmt.Sprintf("plutus-C3A-th%d", th)
			sc.CompactThreshold = th
			for i := 0; i < b.N; i++ {
				sp := geoSpeedup(b, secmem.PSSM(protected), sc)
				b.ReportMetric(sp.Mean, "speedup")
			}
		})
	}
}

// BenchmarkAblation_LazyVsEagerTree compares the lazy tree-update scheme
// (all evaluated configs) against eager root-to-leaf writes on every
// counter update (paper §II-A3's alternative).
func BenchmarkAblation_LazyVsEagerTree(b *testing.B) {
	eager := secmem.PSSM(protected)
	eager.Scheme = "pssm-eager"
	eager.EagerTreeUpdate = true
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, eager, secmem.PSSM(protected))
		b.ReportMetric(sp.Mean, "lazyOverEager")
	}
}

// BenchmarkAblation_MetaCacheSize sweeps the per-partition metadata-cache
// capacity around the paper's 2 KiB (Table II).
func BenchmarkAblation_MetaCacheSize(b *testing.B) {
	for _, kb := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dKiB", kb), func(b *testing.B) {
			sc := secmem.PSSM(protected)
			sc.Scheme = fmt.Sprintf("pssm-mc%d", kb)
			sc.MetaCacheBytes = kb * 1024
			for i := 0; i < b.N; i++ {
				sp := geoSpeedup(b, secmem.Baseline(protected), sc)
				b.ReportMetric(sp.Mean, "normIPC")
			}
		})
	}
}
