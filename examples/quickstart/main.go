// Quickstart: simulate one benchmark under the no-security baseline, the
// PSSM secure-memory baseline, and Plutus, and print the comparison the
// paper's abstract promises — Plutus recovers most of the security
// slowdown and roughly halves security-metadata traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

func main() {
	const protected = 128 << 20 // 128 MiB protected range per partition

	runner := harness.NewRunner(harness.Config{
		ProtectedBytes:  protected,
		MaxInstructions: 15000,
		Benchmarks:      []string{"bfs"},
	})

	schemes := []secmem.Config{
		secmem.Baseline(protected),
		secmem.PSSM(protected),
		secmem.Plutus(protected),
	}

	fmt.Println("simulating bfs under three memory-security schemes...")
	var base *stats.Stats
	var rows [][]string
	for _, sc := range schemes {
		st, err := runner.Run("bfs", sc)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = st
		}
		rows = append(rows, []string{
			sc.Scheme,
			fmt.Sprintf("%.4f", st.IPC()),
			fmt.Sprintf("%.3f", st.IPC()/base.IPC()),
			fmt.Sprintf("%d", st.Traffic.MetadataBytes()/1024),
			fmt.Sprintf("%d", st.Sec.ValueVerified),
		})
	}
	fmt.Println(stats.Table(
		[]string{"scheme", "IPC", "norm. IPC", "metadata KiB", "value-verified reads"}, rows))

	fmt.Println("Plutus authenticates most reads from the value cache alone —")
	fmt.Println("no MAC fetch — and serves counters from the compact mirrored layer.")
}
