// Tamperdetect drives the secure-memory engine directly — no GPU model —
// and demonstrates that each attack class of the threat model is caught:
//
//   - data tampering (bit flips in the DRAM image) — caught by value
//     verification falling through to a MAC mismatch;
//   - MAC spoofing — caught by MAC comparison;
//   - counter replay — caught by the Bonsai Merkle Tree.
//
// It also shows the benign path: what you write is what you read, and
// value-local data authenticates without any MAC fetch.
//
//	go run ./examples/tamperdetect
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/plutus-gpu/plutus/internal/dram"
	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/sim"
	"github.com/plutus-gpu/plutus/internal/stats"
)

type rig struct {
	eng *sim.Engine
	e   *secmem.Engine
	st  *stats.Stats
}

func newRig(cfg secmem.Config) *rig {
	r := &rig{eng: &sim.Engine{}, st: &stats.Stats{}}
	ch := dram.MustNew(dram.DefaultConfig(), r.eng, &r.st.Traffic)
	r.e = secmem.MustNew(cfg, r.eng, ch, r.st)
	return r
}

func (r *rig) write(a geom.Addr, data []byte) {
	r.e.Writeback(a, data, nil)
	r.eng.Drain(1 << 20)
}

func (r *rig) read(a geom.Addr) secmem.ReadResult {
	var res secmem.ReadResult
	r.e.Read(a, func(x secmem.ReadResult) { res = x })
	r.eng.Drain(1 << 20)
	return res
}

func sector(vals ...uint32) []byte {
	b := make([]byte, geom.SectorSize)
	for i := 0; i < 8 && i < len(vals); i++ {
		binary.LittleEndian.PutUint32(b[i*4:], vals[i])
	}
	return b
}

func verdict(ok bool, attack string) {
	if ok {
		fmt.Printf("  %-22s NOT DETECTED (security failure!)\n", attack)
	} else {
		fmt.Printf("  %-22s detected ✓\n", attack)
	}
}

func main() {
	const protected = 1 << 22

	fmt.Println("== benign round trip (Plutus) ==")
	r := newRig(secmem.Plutus(protected))
	payload := sector(0xCAFE0001, 0x12345678, 0xDEADBEEF, 0x0BADF00D,
		0x11223344, 0x55667788, 0x99AABBCC, 0xDDEEFF00)
	r.write(0x1000, payload)
	res := r.read(0x1000)
	if !res.OK {
		log.Fatal("benign read failed verification")
	}
	fmt.Printf("  wrote and read back %d bytes, verified ✓ (value-verified: %v)\n\n",
		len(res.Data), res.ValueVerified)

	fmt.Println("== attack 1: flip one DRAM bit (spoofing) ==")
	r = newRig(secmem.Plutus(protected))
	r.write(0x2000, payload)
	r.e.TamperData(0x2000, 133)
	verdict(r.read(0x2000).OK, "data bit-flip:")

	fmt.Println("\n== attack 2: forge the stored MAC ==")
	r = newRig(secmem.PSSM(protected))
	r.write(0x3000, payload)
	r.e.TamperMAC(0x3000)
	verdict(r.read(0x3000).OK, "MAC spoofing:")

	fmt.Println("\n== attack 3: replay an old encryption counter ==")
	r = newRig(secmem.PSSM(protected))
	r.write(0x4000, payload)
	r.e.ReplayCounter(0x4000)
	verdict(r.read(0x4000).OK, "counter replay:")

	fmt.Println("\n== value verification needs no MAC traffic ==")
	r = newRig(secmem.Plutus(protected))
	common := sector(7, 7, 7, 7, 7, 7, 7, 7)
	for k := geom.Addr(0); k < 64; k++ {
		r.write(0x10000+k*geom.SectorSize, common)
	}
	before := r.st.Traffic.Bytes(stats.MAC)
	for k := geom.Addr(0); k < 64; k++ {
		if got := r.read(0x10000 + k*geom.SectorSize); !got.OK {
			log.Fatal("value-local read failed")
		}
	}
	fmt.Printf("  64 value-local reads moved %d MAC bytes (value cache did the work)\n",
		r.st.Traffic.Bytes(stats.MAC)-before)
}
