// Graphanalytics runs the irregular graph workloads the paper's
// introduction motivates (bfs, sssp, pagerank, spmv) across the secure
// schemes and reports where each Plutus technique earns its keep: graph
// kernels are the benchmarks whose scattered, value-rich accesses suffer
// the most metadata traffic under PSSM and recover the most under Plutus.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
)

func main() {
	const protected = 128 << 20
	graphs := []string{"bfs", "sssp", "pagerank", "spmv"}

	runner := harness.NewRunner(harness.Config{
		ProtectedBytes:  protected,
		MaxInstructions: 10000,
		Benchmarks:      graphs,
	})

	schemes := []secmem.Config{
		secmem.Baseline(protected),
		secmem.PSSM(protected),
		secmem.PlutusValueOnly(protected),
		secmem.Plutus(protected),
	}

	fmt.Println("simulating 4 graph kernels × 4 schemes (this takes a minute)...")
	header := []string{"benchmark", "pssm IPC", "plutus-V IPC", "plutus IPC", "meta traffic vs pssm"}
	var rows [][]string
	for _, b := range graphs {
		base, err := runner.Run(b, schemes[0])
		if err != nil {
			log.Fatal(err)
		}
		pssm, err := runner.Run(b, schemes[1])
		if err != nil {
			log.Fatal(err)
		}
		vOnly, err := runner.Run(b, schemes[2])
		if err != nil {
			log.Fatal(err)
		}
		full, err := runner.Run(b, schemes[3])
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.3f", pssm.IPC()/base.IPC()),
			fmt.Sprintf("%.3f", vOnly.IPC()/base.IPC()),
			fmt.Sprintf("%.3f", full.IPC()/base.IPC()),
			fmt.Sprintf("%.0f%%", 100*float64(full.Traffic.MetadataBytes())/float64(pssm.Traffic.MetadataBytes())),
		})
	}
	fmt.Println(stats.Table(header, rows))
	fmt.Println("(IPC normalized to the no-security baseline; lower metadata % is better)")
}
