// Valuestudy reproduces the paper's §III-B analysis interactively: it
// streams each benchmark's memory values through a value cache and
// reports how often sectors would pass value-based verification under
// different matching rules and cache sizes — the data behind Figs. 9 and
// 21 and Eq. 1's parameter choice.
//
//	go run ./examples/valuestudy
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/plutus-gpu/plutus/internal/geom"
	"github.com/plutus-gpu/plutus/internal/gpusim"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/valcache"
	"github.com/plutus-gpu/plutus/internal/workload"
)

// reuse streams bench's first n memory instructions through one value
// cache with the given config and returns the verified-sector fraction.
func reuse(bench string, cfg valcache.Config, n int) float64 {
	wl, err := workload.Get(bench)
	if err != nil {
		log.Fatal(err)
	}
	vc := valcache.MustNew(cfg)
	buf := make([]byte, geom.SectorSize)
	var total, hit int
	issued := 0
	for w := 0; w < wl.Warps() && issued < n; w++ {
		for issued < n {
			inst, ok := wl.Next(w)
			if !ok {
				break
			}
			issued++
			if inst.Kind == gpusim.Compute {
				continue
			}
			seen := map[geom.Addr]bool{}
			for _, a := range inst.Addrs {
				s := geom.SectorAddr(a)
				if seen[s] {
					continue
				}
				seen[s] = true
				for k := 0; k < 8; k++ {
					binary.LittleEndian.PutUint32(buf[k*4:], wl.MemValue(s+geom.Addr(k*4)))
				}
				total++
				if inst.Kind == gpusim.Load && vc.VerifySector(buf).Verified {
					hit++
				}
				vc.ObserveSector(buf)
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

func main() {
	benches := []string{"bfs", "pagerank", "hotspot", "sgemm", "histo"}
	const budget = 4000

	fmt.Println("== matching-rule study (256-entry cache) ==")
	rules := []struct {
		name string
		cfg  valcache.Config
	}{
		{"exact, 4-of-4", valcache.Config{Entries: 256, PinnedFrac: 0.25, MaskBits: 0, PinThreshold: 8, MatchThreshold: 4}},
		{"exact, 3-of-4", valcache.Config{Entries: 256, PinnedFrac: 0.25, MaskBits: 0, PinThreshold: 8, MatchThreshold: 3}},
		{"masked, 3-of-4", valcache.Config{Entries: 256, PinnedFrac: 0.25, MaskBits: 4, PinThreshold: 8, MatchThreshold: 3}},
	}
	header := []string{"benchmark"}
	for _, r := range rules {
		header = append(header, r.name)
	}
	var rows [][]string
	for _, b := range benches {
		row := []string{b}
		for _, r := range rules {
			row = append(row, fmt.Sprintf("%.1f%%", 100*reuse(b, r.cfg, budget)))
		}
		rows = append(rows, row)
	}
	fmt.Println(stats.Table(header, rows))

	fmt.Println("== cache-size sensitivity (masked 3-of-4) ==")
	sizes := []int{64, 128, 256, 512, 1024}
	header = []string{"benchmark"}
	for _, s := range sizes {
		header = append(header, fmt.Sprintf("%d", s))
	}
	rows = nil
	for _, b := range benches {
		row := []string{b}
		for _, s := range sizes {
			cfg := valcache.DefaultConfig()
			cfg.Entries = s
			row = append(row, fmt.Sprintf("%.1f%%", 100*reuse(b, cfg, budget)))
		}
		rows = append(rows, row)
	}
	fmt.Println(stats.Table(header, rows))

	fmt.Println("== Eq. 1: why 3-of-4 is safe ==")
	p := valcache.HitProbability(256, 4)
	for x := 1; x <= 4; x++ {
		fmt.Printf("  x=%d: tampered-block pass probability %.3e\n",
			x, valcache.ForgeryProbability(4, x, p))
	}
	fmt.Printf("  8-byte MAC collision probability: %.3e — x=3 is far below it.\n", 1.0/(1<<63)/2)
}
