//go:build !race

package plutus_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
