//go:build !race

package plutus_test

import "testing"

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false

// TestRaceTagOff is the !race counterpart of TestRaceTagOn: CI runs it
// without -race and fails if zero tests execute, proving this tag set
// is the one selected in ordinary builds.
func TestRaceTagOff(t *testing.T) {
	if raceEnabled {
		t.Fatal("compiled without the race tag but raceEnabled is true")
	}
}
