// Package plutus is a Go reproduction of "Plutus: Bandwidth-Efficient
// Memory Security for GPUs" (HPCA 2023): a secure GPU memory system —
// counter-mode/XTS encryption, per-sector MACs, Bonsai Merkle Trees —
// together with the paper's three bandwidth optimizations (value-based
// integrity verification, compact mirrored counters, fine-granularity
// metadata blocks) and the cycle-driven GPU memory-system simulator used
// to evaluate them.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); the executables under cmd/ and the programs under examples/ are
// the supported entry points:
//
//	go run ./cmd/plutussim -bench bfs -scheme plutus
//	go run ./cmd/experiments           # regenerate every paper figure
//	go run ./examples/quickstart
//
// The benchmarks in bench_test.go regenerate each evaluation figure at a
// reduced instruction budget:
//
//	go test -bench=. -benchmem
package plutus
