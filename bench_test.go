// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each
// benchmark runs the corresponding experiment at a reduced
// instruction budget and reports the figure's headline quantity as a
// custom metric, so `go test -bench=.` regenerates the whole evaluation
// in miniature. Run cmd/experiments for full-budget tables.
package plutus_test

import (
	"sync"
	"testing"

	"github.com/plutus-gpu/plutus/internal/counters"
	"github.com/plutus-gpu/plutus/internal/harness"
	"github.com/plutus-gpu/plutus/internal/secmem"
	"github.com/plutus-gpu/plutus/internal/stats"
	"github.com/plutus-gpu/plutus/internal/valcache"
)

const protected = 128 << 20

// benchBenchmarks is the workload subset used by the figure benchmarks:
// two irregular, one stencil, one streaming — enough to show every
// mechanism while keeping -bench runs to minutes.
var benchBenchmarks = []string{"bfs", "pagerank", "hotspot", "pathfinder"}

var (
	runnerOnce sync.Once
	runner     *harness.Runner
)

// sharedRunner caches simulation results across all benchmarks in the
// process, exactly like cmd/experiments does across figures.
func sharedRunner() *harness.Runner {
	runnerOnce.Do(func() {
		runner = harness.NewRunner(harness.Config{
			ProtectedBytes:  protected,
			MaxInstructions: 4000,
			Benchmarks:      benchBenchmarks,
		})
	})
	return runner
}

// geoSpeedup runs scheme b against scheme a over the benchmark subset.
func geoSpeedup(tb testing.TB, a, b secmem.Config) *harness.Speedup {
	sp, err := sharedRunner().CompareSchemes(a, b)
	if err != nil {
		tb.Fatal(err)
	}
	return sp
}

// BenchmarkFig06_SecurityOverhead measures the PSSM slowdown vs no
// security (paper Fig. 6; metric: normalized IPC, <1 is a slowdown).
func BenchmarkFig06_SecurityOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.Baseline(protected), secmem.PSSM(protected))
		b.ReportMetric(sp.Mean, "normIPC")
	}
}

// BenchmarkFig07_TrafficBreakdown measures PSSM metadata bytes per data
// byte (paper Fig. 7).
func BenchmarkFig07_TrafficBreakdown(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		var meta, data float64
		for _, bench := range benchBenchmarks {
			st, err := r.Run(bench, secmem.PSSM(protected))
			if err != nil {
				b.Fatal(err)
			}
			meta += float64(st.Traffic.MetadataBytes())
			data += float64(st.Traffic.Bytes(stats.Data))
		}
		b.ReportMetric(meta/data, "meta/data")
	}
}

// BenchmarkFig09_ValueLocality measures the masked 3-of-4 value-reuse
// rate (paper Fig. 9).
func BenchmarkFig09_ValueLocality(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig9(r)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkFig10_ReadWriteMix measures the load fraction of memory
// instructions (paper Fig. 10).
func BenchmarkFig10_ReadWriteMix(b *testing.B) {
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		var loads, total float64
		for _, bench := range benchBenchmarks {
			st, err := r.Run(bench, secmem.Baseline(protected))
			if err != nil {
				b.Fatal(err)
			}
			loads += float64(st.LoadInsts)
			total += float64(st.MemInsts)
		}
		b.ReportMetric(loads/total, "readFrac")
	}
}

// BenchmarkFig15_ValueVerification measures value-based verification's
// speedup over PSSM (paper Fig. 15: +4.94% avg, up to +19.89%).
func BenchmarkFig15_ValueVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.PSSM(protected), secmem.PlutusValueOnly(protected))
		b.ReportMetric(sp.Mean, "speedup")
		b.ReportMetric(sp.Max, "maxSpeedup")
	}
}

// BenchmarkFig16_FineGrainMetadata measures the all-32 B metadata design
// vs the 128 B baseline (paper Fig. 16: +10.57% avg, up to +74.85%).
func BenchmarkFig16_FineGrainMetadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.PSSM(protected),
			secmem.PlutusFineGrain(protected, secmem.GranAll32))
		b.ReportMetric(sp.Mean, "speedup")
	}
}

// BenchmarkFig17_CompactCounters measures the adaptive compact-counter
// design vs PSSM (paper Fig. 17: +2.07% avg, up to +8.28%).
func BenchmarkFig17_CompactCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.PSSM(protected),
			secmem.PlutusCompact(protected, counters.Compact3BitAdaptive))
		b.ReportMetric(sp.Mean, "speedup")
	}
}

// BenchmarkFig18_PlutusOverall measures the headline result (paper
// Fig. 18: +16.86% avg IPC over PSSM, up to +58.38%).
func BenchmarkFig18_PlutusOverall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.PSSM(protected), secmem.Plutus(protected))
		b.ReportMetric(sp.Mean, "speedup")
		b.ReportMetric(sp.Max, "maxSpeedup")
	}
}

// BenchmarkFig19_TrafficReduction measures Plutus's security-metadata
// traffic relative to PSSM (paper Fig. 19: −48.14% avg, up to −80.30%).
func BenchmarkFig19_TrafficReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.PSSM(protected), secmem.Plutus(protected))
		b.ReportMetric(1-sp.TrafficMean, "metaReduction")
	}
}

// BenchmarkFig20_NoTreeTraffic measures the residual cost of the
// integrity tree in Plutus (paper Fig. 20).
func BenchmarkFig20_NoTreeTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, secmem.Plutus(protected), secmem.PlutusNoTree(protected))
		b.ReportMetric(sp.Mean, "speedup")
	}
}

// BenchmarkFig21_ValueCacheSensitivity measures the marginal value of a
// 1024-entry value cache over the paper's 256 (paper Fig. 21: small).
func BenchmarkFig21_ValueCacheSensitivity(b *testing.B) {
	small := secmem.PlutusValueOnly(protected)
	small.Scheme, small.Value.Entries = "vc-256", 256
	big := secmem.PlutusValueOnly(protected)
	big.Scheme, big.Value.Entries = "vc-1024", 1024
	for i := 0; i < b.N; i++ {
		sp := geoSpeedup(b, small, big)
		b.ReportMetric(sp.Mean, "speedup1024v256")
	}
}

// BenchmarkFig22_Power measures normalized energy per instruction (paper
// Fig. 22 reports power: PSSM 1.369×, Plutus 1.178× of no security).
func BenchmarkFig22_Power(b *testing.B) {
	r := sharedRunner()
	em := stats.DefaultEnergyModel()
	for i := 0; i < b.N; i++ {
		var pssm, plutus []float64
		for _, bench := range benchBenchmarks {
			base, err := r.Run(bench, secmem.Baseline(protected))
			if err != nil {
				b.Fatal(err)
			}
			sp, err := r.Run(bench, secmem.PSSM(protected))
			if err != nil {
				b.Fatal(err)
			}
			pl, err := r.Run(bench, secmem.Plutus(protected))
			if err != nil {
				b.Fatal(err)
			}
			perInst := func(st *stats.Stats) float64 {
				return em.Energy(st).TotalRaw / float64(st.Instructions)
			}
			pssm = append(pssm, perInst(sp)/perInst(base))
			plutus = append(plutus, perInst(pl)/perInst(base))
		}
		b.ReportMetric(stats.GeoMean(pssm), "pssmPower")
		b.ReportMetric(stats.GeoMean(plutus), "plutusPower")
	}
}

// BenchmarkEq1_ForgeryBound measures the cost of evaluating the paper's
// Eq. 1 bound (§IV-C) and reports the resulting forgery probability.
func BenchmarkEq1_ForgeryBound(b *testing.B) {
	p := valcache.HitProbability(256, 4)
	var f float64
	for i := 0; i < b.N; i++ {
		f = valcache.ForgeryProbability(4, 3, p)
	}
	b.ReportMetric(f, "forgeryProb")
}
